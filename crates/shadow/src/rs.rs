//! The shadowing recovery system.

use crate::record::{decode_record, encode_record, IntentBody, ShadowRecord};
use argus_core::{
    CState, HousekeepingMode, LogStats, ObjState, ObjectTable, OtEntry, PState, RecoveryOutcome,
    RecoverySystem, RsError, RsResult, StoreProvider,
};
use argus_objects::{
    ActionId, AtomicObject, GuardianId, Heap, HeapId, MutexObject, ObjKind, ObjectBody, Uid, Value,
};
use argus_slog::{LogAddress, StableLog};
use argus_stable::PageStore;
use std::collections::{HashMap, HashSet};

/// The shadowing organization behind the common [`RecoverySystem`] trait.
///
/// # Examples
///
/// ```
/// use argus_core::{providers::MemProvider, RecoverySystem};
/// use argus_objects::{ActionId, GuardianId, Heap, Value};
/// use argus_shadow::ShadowRs;
///
/// let mut rs = ShadowRs::create(MemProvider::fast())?;
/// let mut heap = Heap::with_stable_root();
/// let aid = ActionId::new(GuardianId(0), 1);
/// let root = heap.stable_root().unwrap();
/// heap.acquire_write(root, aid)?;
/// heap.write_value(root, aid, |v| *v = Value::from("shadowed"))?;
/// rs.prepare(aid, &[root], &heap)?;
/// rs.commit(aid)?; // writes a brand-new map
/// heap.commit_action(aid);
///
/// rs.simulate_crash()?;
/// let mut recovered = Heap::new();
/// let outcome = rs.recover(&mut recovered)?;
/// // Shadow recovery reads the newest map + live versions, nothing more.
/// assert!(outcome.entries_examined <= 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// Volatile state mirrors what the stable map encodes: the committed map,
/// the unresolved intents, and the unfinished coordinator actions. Every
/// commit serializes the *entire* map — the cost the thesis holds against
/// shadowing: "changing the entries in the map and rewriting the map at
/// every action commit... could be expensive, especially if the map is large"
/// (§1.2.1).
#[derive(Debug)]
pub struct ShadowRs<P: StoreProvider> {
    provider: P,
    log: StableLog<P::Store>,
    /// The committed map: uid → (kind, version address).
    map: HashMap<Uid, (ObjKind, LogAddress)>,
    /// Unresolved prepared intents.
    intents: HashMap<ActionId, IntentBody>,
    /// `prepared_data` pairs waiting on another action's commit.
    pd_index: HashMap<ActionId, Vec<(Uid, LogAddress)>>,
    /// Unfinished coordinator actions.
    coords: HashMap<ActionId, Vec<GuardianId>>,
    /// The accessibility set.
    access: HashSet<Uid>,
    /// The prepared-actions table.
    pat: HashSet<ActionId>,
    /// Whether a housekeeping pass is open.
    hk_open: bool,
}

impl<P: StoreProvider> ShadowRs<P> {
    /// Creates a shadowing store over a fresh log.
    pub fn create(mut provider: P) -> RsResult<Self> {
        let log = StableLog::create(provider.new_store())?;
        Ok(Self {
            provider,
            log,
            map: HashMap::new(),
            intents: HashMap::new(),
            pd_index: HashMap::new(),
            coords: HashMap::new(),
            access: [Uid::STABLE_ROOT].into_iter().collect(),
            pat: HashSet::new(),
            hk_open: false,
        })
    }

    /// Opens a shadowing store over an existing log (post-crash). Call
    /// [`RecoverySystem::recover`] before anything else.
    pub fn open(provider: P, store: P::Store) -> RsResult<Self> {
        Ok(Self {
            provider,
            log: StableLog::open(store)?,
            map: HashMap::new(),
            intents: HashMap::new(),
            pd_index: HashMap::new(),
            coords: HashMap::new(),
            access: HashSet::new(),
            pat: HashSet::new(),
            hk_open: false,
        })
    }

    /// Number of entries in the committed map (experiments).
    pub fn map_len(&self) -> usize {
        self.map.len()
    }

    /// Direct access to the underlying log (experiments).
    pub fn log(&self) -> &StableLog<P::Store> {
        &self.log
    }

    fn append(&mut self, record: &ShadowRecord) -> RsResult<LogAddress> {
        Ok(self.log.write(&encode_record(record)?))
    }

    /// Serializes and appends the full current map — the per-commit price of
    /// shadowing.
    fn append_map(&mut self) -> RsResult<()> {
        let mut entries: Vec<(Uid, ObjKind, LogAddress)> =
            self.map.iter().map(|(u, (k, a))| (*u, *k, *a)).collect();
        entries.sort_by_key(|(u, _, _)| *u);
        let mut intents: Vec<IntentBody> = self.intents.values().cloned().collect();
        intents.sort_by_key(|i| i.aid);
        let mut coords: Vec<(ActionId, Vec<GuardianId>)> =
            self.coords.iter().map(|(a, g)| (*a, g.clone())).collect();
        coords.sort_by_key(|(a, _)| *a);
        self.append(&ShadowRecord::Map {
            entries,
            intents,
            coords,
        })?;
        Ok(())
    }

    fn read_version(&mut self, addr: LogAddress) -> RsResult<(Uid, ObjKind, Value)> {
        let (_seq, payload) = self.log.read(addr)?;
        match decode_record(&payload)? {
            ShadowRecord::Version { uid, kind, value } => Ok((uid, kind, value)),
            other => Err(RsError::BadState(format!(
                "expected a version record at {addr}, found {other:?}"
            ))),
        }
    }

    /// Folds a resolved intent into the volatile map. Returns whether the
    /// map changed (deciding whether a new map must be written).
    fn fold(&mut self, intent: &IntentBody, committed: bool) -> bool {
        let mut changed = false;
        for (uid, kind, addr) in &intent.cur {
            // Mutex versions take effect once prepared, even on abort.
            if committed || *kind == ObjKind::Mutex {
                self.map.insert(*uid, (*kind, *addr));
                changed = true;
            }
        }
        for (uid, addr) in &intent.base {
            // Base versions of newly accessible objects are committed state
            // regardless of this action's verdict.
            self.map.entry(*uid).or_insert((ObjKind::Atomic, *addr));
            changed = true;
        }
        if committed {
            if let Some(pd) = self.pd_index.remove(&intent.aid) {
                for (uid, addr) in pd {
                    self.map.insert(uid, (ObjKind::Atomic, addr));
                    changed = true;
                }
            }
        }
        changed
    }
}

/// The write-path sink: versions into version storage, pointers into the
/// action's intent.
struct ShadowSink<'a, S: PageStore> {
    log: &'a mut StableLog<S>,
    intent: &'a mut IntentBody,
}

impl<S: PageStore> ShadowSink<'_, S> {
    fn version(&mut self, uid: Uid, kind: ObjKind, value: Value) -> RsResult<LogAddress> {
        Ok(self
            .log
            .write(&encode_record(&ShadowRecord::Version { uid, kind, value })?))
    }
}

impl<S: PageStore> argus_core::writer_sink::Sink for ShadowSink<'_, S> {
    fn data(&mut self, uid: Uid, kind: ObjKind, value: Value, _aid: ActionId) -> RsResult<()> {
        let addr = self.version(uid, kind, value)?;
        self.intent.cur.push((uid, kind, addr));
        Ok(())
    }

    fn base_committed(&mut self, uid: Uid, value: Value) -> RsResult<()> {
        let addr = self.version(uid, ObjKind::Atomic, value)?;
        self.intent.base.push((uid, addr));
        Ok(())
    }

    fn prepared_data(&mut self, uid: Uid, value: Value, aid: ActionId) -> RsResult<()> {
        let addr = self.version(uid, ObjKind::Atomic, value)?;
        self.intent.pd.push((uid, addr, aid));
        Ok(())
    }
}

impl<P: StoreProvider> RecoverySystem for ShadowRs<P> {
    fn prepare(&mut self, aid: ActionId, mos: &[HeapId], heap: &Heap) -> RsResult<()> {
        let mut intent = IntentBody::new(aid);
        {
            let mut sink = ShadowSink {
                log: &mut self.log,
                intent: &mut intent,
            };
            argus_core::writer_sink::process(
                aid,
                mos,
                heap,
                &mut self.access,
                &self.pat,
                &mut sink,
            )?;
        }
        self.append(&ShadowRecord::Intent(intent.clone()))?;
        self.log.force()?;
        for (uid, addr, other) in &intent.pd {
            self.pd_index.entry(*other).or_default().push((*uid, *addr));
        }
        self.intents.insert(aid, intent);
        self.pat.insert(aid);
        Ok(())
    }

    fn write_entry(
        &mut self,
        _aid: ActionId,
        mos: &[HeapId],
        _heap: &Heap,
    ) -> RsResult<Vec<HeapId>> {
        // Early prepare is not part of the shadowing organization.
        Ok(mos.to_vec())
    }

    fn commit(&mut self, aid: ActionId) -> RsResult<()> {
        let intent = self
            .intents
            .remove(&aid)
            .unwrap_or_else(|| IntentBody::new(aid));
        self.fold(&intent, true);
        // The defining cost: a full map accompanies every commit. The
        // resolution record follows the map in the same force so the
        // backward scan to the newest map still observes it.
        self.append_map()?;
        self.append(&ShadowRecord::Resolved {
            aid,
            committed: true,
        })?;
        self.log.force()?;
        self.pat.remove(&aid);
        Ok(())
    }

    fn abort(&mut self, aid: ActionId) -> RsResult<()> {
        let intent = self.intents.remove(&aid);
        self.pd_index.remove(&aid);
        let changed = match &intent {
            Some(body) => self.fold(body, false),
            None => false,
        };
        if changed {
            self.append_map()?;
        }
        self.append(&ShadowRecord::Resolved {
            aid,
            committed: false,
        })?;
        self.log.force()?;
        self.pat.remove(&aid);
        Ok(())
    }

    fn committing(&mut self, aid: ActionId, gids: &[GuardianId]) -> RsResult<()> {
        self.append(&ShadowRecord::Committing {
            aid,
            gids: gids.to_vec(),
        })?;
        self.log.force()?;
        self.coords.insert(aid, gids.to_vec());
        Ok(())
    }

    fn done(&mut self, aid: ActionId) -> RsResult<()> {
        self.append(&ShadowRecord::Done { aid })?;
        self.log.force()?;
        self.coords.remove(&aid);
        Ok(())
    }

    fn recover(&mut self, heap: &mut Heap) -> RsResult<RecoveryOutcome> {
        let mut entries_examined = 0u64;
        let mut data_entries_read = 0u64;

        // Phase 1: scan backward to the newest map, collecting what came
        // after it.
        let mut resolved: HashMap<ActionId, bool> = HashMap::new();
        let mut post_intents: Vec<IntentBody> = Vec::new();
        let mut post_committing: Vec<(ActionId, Vec<GuardianId>)> = Vec::new();
        let mut done: HashSet<ActionId> = HashSet::new();
        let mut map_entries: Vec<(Uid, ObjKind, LogAddress)> = Vec::new();
        let mut map_intents: Vec<IntentBody> = Vec::new();
        let mut map_coords: Vec<(ActionId, Vec<GuardianId>)> = Vec::new();

        for item in self.log.read_backward(None) {
            let (_addr, _seq, payload) = item?;
            entries_examined += 1;
            match decode_record(&payload)? {
                ShadowRecord::Map {
                    entries,
                    intents,
                    coords,
                } => {
                    map_entries = entries;
                    map_intents = intents;
                    map_coords = coords;
                    break; // everything older is superseded
                }
                ShadowRecord::Resolved { aid, committed } => {
                    resolved.entry(aid).or_insert(committed);
                }
                ShadowRecord::Intent(body) => post_intents.push(body),
                ShadowRecord::Committing { aid, gids } => post_committing.push((aid, gids)),
                ShadowRecord::Done { aid } => {
                    done.insert(aid);
                }
                ShadowRecord::Version { .. } => {}
            }
        }

        // Effective in-doubt intents: newest first, minus resolved ones.
        let mut in_doubt: Vec<IntentBody> = Vec::new();
        let mut seen: HashSet<ActionId> = HashSet::new();
        for intent in post_intents.into_iter().chain(map_intents) {
            if !resolved.contains_key(&intent.aid) && seen.insert(intent.aid) {
                in_doubt.push(intent);
            }
        }

        // Phase 2: materialize the committed state from the map.
        let mut ot = ObjectTable::new();
        for (uid, kind, addr) in &map_entries {
            let (vuid, vkind, value) = self.read_version(*addr)?;
            entries_examined += 1;
            data_entries_read += 1;
            if vuid != *uid || vkind != *kind {
                return Err(RsError::BadState(format!(
                    "map entry for {uid} names {vuid}"
                )));
            }
            let body = match kind {
                ObjKind::Atomic => ObjectBody::Atomic(AtomicObject::new(value)),
                ObjKind::Mutex => ObjectBody::Mutex(MutexObject::new(value)),
            };
            let h = heap.insert_with_uid(*uid, body)?;
            ot.insert(
                *uid,
                OtEntry {
                    state: ObjState::Restored,
                    heap: h,
                    mutex_addr: (*kind == ObjKind::Mutex).then_some(*addr),
                },
            );
        }

        // Phase 3: overlay the in-doubt intents.
        let mut pt = argus_core::ParticipantTable::new();
        for (aid, committed) in &resolved {
            pt.enter(
                *aid,
                if *committed {
                    PState::Committed
                } else {
                    PState::Aborted
                },
            );
        }
        let doubt_set: HashSet<ActionId> = in_doubt.iter().map(|i| i.aid).collect();
        for intent in &in_doubt {
            pt.enter(intent.aid, PState::Prepared);
            for (uid, addr) in &intent.base {
                if heap.lookup(*uid).is_none() {
                    let (_u, _k, value) = self.read_version(*addr)?;
                    entries_examined += 1;
                    data_entries_read += 1;
                    let h =
                        heap.insert_with_uid(*uid, ObjectBody::Atomic(AtomicObject::new(value)))?;
                    ot.insert(
                        *uid,
                        OtEntry {
                            state: ObjState::Restored,
                            heap: h,
                            mutex_addr: None,
                        },
                    );
                }
            }
            let attach = |rs: &mut Self,
                          heap: &mut Heap,
                          ot: &mut ObjectTable,
                          uid: Uid,
                          kind: ObjKind,
                          addr: LogAddress,
                          owner: ActionId|
             -> RsResult<()> {
                let (_u, _k, value) = rs.read_version(addr)?;
                match heap.lookup(uid) {
                    Some(h) => match (&mut heap.get_mut(h)?.body, kind) {
                        (ObjectBody::Atomic(obj), ObjKind::Atomic) => {
                            if obj.writer.is_none() {
                                obj.current = Some(value);
                                obj.writer = Some(owner);
                                if let Some(e) = ot.get_mut(uid) {
                                    e.state = ObjState::Prepared;
                                }
                            }
                        }
                        (ObjectBody::Mutex(obj), ObjKind::Mutex) => obj.value = value,
                        _ => {
                            return Err(RsError::BadState(format!("kind mismatch restoring {uid}")))
                        }
                    },
                    None => {
                        let body = match kind {
                            ObjKind::Atomic => ObjectBody::Atomic(AtomicObject {
                                base: Value::Unit,
                                current: Some(value),
                                writer: Some(owner),
                                readers: Default::default(),
                            }),
                            ObjKind::Mutex => ObjectBody::Mutex(MutexObject::new(value)),
                        };
                        let h = heap.insert_with_uid(uid, body)?;
                        ot.insert(
                            uid,
                            OtEntry {
                                state: match kind {
                                    ObjKind::Atomic => ObjState::Prepared,
                                    ObjKind::Mutex => ObjState::Restored,
                                },
                                heap: h,
                                mutex_addr: (kind == ObjKind::Mutex).then_some(addr),
                            },
                        );
                    }
                }
                Ok(())
            };
            for (uid, kind, addr) in &intent.cur {
                entries_examined += 1;
                data_entries_read += 1;
                attach(self, heap, &mut ot, *uid, *kind, *addr, intent.aid)?;
            }
            for (uid, addr, other) in &intent.pd {
                if doubt_set.contains(other) {
                    entries_examined += 1;
                    data_entries_read += 1;
                    attach(self, heap, &mut ot, *uid, ObjKind::Atomic, *addr, *other)?;
                }
            }
        }

        heap.resolve_uid_refs();

        // Coordinator table.
        let mut ct = argus_core::CoordinatorTable::new();
        for aid in &done {
            ct.enter(*aid, CState::Done);
        }
        for (aid, gids) in post_committing.into_iter().chain(map_coords) {
            if !done.contains(&aid) {
                ct.enter(aid, CState::Committing(gids));
            }
        }

        // Rebuild volatile state.
        self.map = map_entries
            .into_iter()
            .map(|(u, k, a)| (u, (k, a)))
            .collect();
        self.intents = in_doubt.iter().map(|i| (i.aid, i.clone())).collect();
        self.pd_index.clear();
        for intent in &in_doubt {
            for (uid, addr, other) in &intent.pd {
                self.pd_index.entry(*other).or_default().push((*uid, *addr));
            }
        }
        self.coords = ct.committing_actions().into_iter().collect();
        self.access = heap.accessible_uids();
        if heap.stable_root().is_none() {
            self.access.insert(Uid::STABLE_ROOT);
        }
        self.pat = doubt_set;

        Ok(RecoveryOutcome {
            ot,
            pt,
            ct,
            entries_examined,
            data_entries_read,
            // Shadowing recovers from the version map, not a backward chain.
            chain_hops: 0,
        })
    }

    fn begin_housekeeping(&mut self, heap: &Heap, _mode: HousekeepingMode) -> RsResult<()> {
        if self.hk_open {
            return Err(RsError::BadState("housekeeping already in progress".into()));
        }
        // Version-storage garbage collection: copy the live versions and the
        // in-doubt intents' versions to a fresh log, rewrite the map, switch.
        let mut new_log = StableLog::create(self.provider.new_store())?;
        let mut new_map: HashMap<Uid, (ObjKind, LogAddress)> = HashMap::new();
        let map_snapshot: Vec<(Uid, ObjKind, LogAddress)> =
            self.map.iter().map(|(u, (k, a))| (*u, *k, *a)).collect();
        for (uid, kind, addr) in map_snapshot {
            let (_u, _k, value) = self.read_version(addr)?;
            let na = new_log.write(&encode_record(&ShadowRecord::Version { uid, kind, value })?);
            new_map.insert(uid, (kind, na));
        }
        let intents_snapshot: Vec<IntentBody> = self.intents.values().cloned().collect();
        let mut new_intents: HashMap<ActionId, IntentBody> = HashMap::new();
        for old in intents_snapshot {
            let mut rewritten = IntentBody::new(old.aid);
            for (uid, kind, addr) in old.cur {
                let (_u, _k, value) = self.read_version(addr)?;
                let na =
                    new_log.write(&encode_record(&ShadowRecord::Version { uid, kind, value })?);
                rewritten.cur.push((uid, kind, na));
            }
            for (uid, addr) in old.base {
                let (_u, _k, value) = self.read_version(addr)?;
                let na = new_log.write(&encode_record(&ShadowRecord::Version {
                    uid,
                    kind: ObjKind::Atomic,
                    value,
                })?);
                rewritten.base.push((uid, na));
            }
            for (uid, addr, other) in old.pd {
                let (_u, _k, value) = self.read_version(addr)?;
                let na = new_log.write(&encode_record(&ShadowRecord::Version {
                    uid,
                    kind: ObjKind::Atomic,
                    value,
                })?);
                rewritten.pd.push((uid, na, other));
            }
            new_intents.insert(rewritten.aid, rewritten);
        }
        // Write the map on the new log and force the whole thing durable
        // while the old log is still the active one: a crash anywhere up to
        // here recovers from the untouched old log. Only a fully forced new
        // log may supplant it.
        let mut entries: Vec<(Uid, ObjKind, LogAddress)> =
            new_map.iter().map(|(u, (k, a))| (*u, *k, *a)).collect();
        entries.sort_by_key(|(u, _, _)| *u);
        let mut intents: Vec<IntentBody> = new_intents.values().cloned().collect();
        intents.sort_by_key(|i| i.aid);
        let mut coords: Vec<(ActionId, Vec<GuardianId>)> =
            self.coords.iter().map(|(a, g)| (*a, g.clone())).collect();
        coords.sort_by_key(|(a, _)| *a);
        new_log.write(&encode_record(&ShadowRecord::Map {
            entries,
            intents,
            coords,
        })?);
        new_log.force()?;

        // "In one atomic step, the new log supplants the old log."
        self.log = new_log;
        self.provider.store_switched();
        self.map = new_map;
        self.intents = new_intents;
        self.pd_index.clear();
        for intent in self.intents.values() {
            for (uid, addr, other) in &intent.pd {
                self.pd_index.entry(*other).or_default().push((*uid, *addr));
            }
        }
        let _ = heap;
        self.hk_open = true;
        Ok(())
    }

    fn finish_housekeeping(&mut self) -> RsResult<()> {
        if !self.hk_open {
            return Err(RsError::BadState("no housekeeping in progress".into()));
        }
        self.hk_open = false;
        Ok(())
    }

    fn simulate_crash(&mut self) -> RsResult<()> {
        self.log.reopen()?;
        self.map.clear();
        self.intents.clear();
        self.pd_index.clear();
        self.coords.clear();
        self.access.clear();
        self.pat.clear();
        self.hk_open = false;
        Ok(())
    }

    fn trim_access_set(&mut self, heap: &Heap) {
        let reachable = heap.accessible_uids();
        self.access = self.access.intersection(&reachable).copied().collect();
        self.access.insert(Uid::STABLE_ROOT);
    }

    fn is_prepared(&self, aid: ActionId) -> bool {
        self.pat.contains(&aid)
    }

    fn log_stats(&self) -> LogStats {
        LogStats {
            entries: self.log.stable_count(),
            bytes: self.log.stable_bytes(),
            device: self.log.store().stats().snapshot(),
        }
    }

    fn decay_page(&mut self, pno: argus_stable::PageNo) -> bool {
        self.log.store_mut().decay_page(pno)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_core::providers::MemProvider;

    fn rs() -> ShadowRs<MemProvider> {
        ShadowRs::create(MemProvider::fast()).unwrap()
    }

    fn aid(n: u64) -> ActionId {
        ActionId::new(GuardianId(0), n)
    }

    fn commit_root(rs: &mut ShadowRs<MemProvider>, heap: &mut Heap, a: ActionId, value: Value) {
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = value).unwrap();
        rs.prepare(a, &[root], heap).unwrap();
        rs.commit(a).unwrap();
        heap.commit_action(a);
    }

    fn recovered(rs: &mut ShadowRs<MemProvider>) -> (Heap, RecoveryOutcome) {
        rs.simulate_crash().unwrap();
        let mut heap = Heap::new();
        let out = rs.recover(&mut heap).unwrap();
        (heap, out)
    }

    #[test]
    fn committed_state_survives_crash() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let obj = heap.alloc_atomic(Value::Int(10), Some(a));
        let obj_uid = heap.uid_of(obj).unwrap();
        commit_root(&mut rs, &mut heap, a, Value::heap_ref(obj));

        let (heap2, out) = recovered(&mut rs);
        assert_eq!(out.pt.get(a), Some(PState::Committed));
        let h = heap2.lookup(obj_uid).unwrap();
        assert_eq!(heap2.read_value(h, None).unwrap(), &Value::Int(10));
        let root = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root, None).unwrap(), &Value::heap_ref(h));
    }

    #[test]
    fn recovery_is_flat_in_history_length() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        for i in 0..30 {
            commit_root(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        let (heap2, out) = recovered(&mut rs);
        // One map record + one version per live object: far fewer than the
        // ~90 records on the log.
        assert!(
            out.entries_examined <= 3,
            "examined {}",
            out.entries_examined
        );
        let root = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root, None).unwrap(), &Value::Int(29));
    }

    #[test]
    fn aborted_actions_leave_no_trace() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        commit_root(&mut rs, &mut heap, aid(1), Value::Int(1));
        let b = aid(2);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, b).unwrap();
        heap.write_value(root, b, |v| *v = Value::Int(99)).unwrap();
        rs.prepare(b, &[root], &heap).unwrap();
        rs.abort(b).unwrap();
        heap.abort_action(b);

        let (heap2, out) = recovered(&mut rs);
        assert_eq!(out.pt.get(b), Some(PState::Aborted));
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(1));
    }

    #[test]
    fn in_doubt_intent_is_restored_with_lock() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        commit_root(&mut rs, &mut heap, aid(1), Value::Int(1));
        let b = aid(2);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, b).unwrap();
        heap.write_value(root, b, |v| *v = Value::Int(2)).unwrap();
        rs.prepare(b, &[root], &heap).unwrap();

        let (heap2, out) = recovered(&mut rs);
        assert_eq!(out.pt.get(b), Some(PState::Prepared));
        assert!(rs.is_prepared(b));
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(1));
        assert_eq!(heap2.read_value(root2, Some(b)).unwrap(), &Value::Int(2));
    }

    #[test]
    fn mutex_of_prepared_then_aborted_action_survives() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let m = heap.alloc_mutex(Value::Int(1));
        let m_uid = heap.uid_of(m).unwrap();
        commit_root(&mut rs, &mut heap, a, Value::heap_ref(m));

        let b = aid(2);
        heap.seize(m, b).unwrap();
        heap.mutate_mutex(m, b, |v| *v = Value::Int(42)).unwrap();
        heap.release(m, b).unwrap();
        rs.prepare(b, &[m], &heap).unwrap();
        rs.abort(b).unwrap();
        heap.abort_action(b);

        let (heap2, _) = recovered(&mut rs);
        let m2 = heap2.lookup(m_uid).unwrap();
        assert_eq!(heap2.read_value(m2, None).unwrap(), &Value::Int(42));
    }

    #[test]
    fn housekeeping_bounds_version_storage() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        for i in 0..40 {
            commit_root(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        let before = rs.log().stable_bytes();
        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        assert!(rs.log().stable_bytes() < before / 4);
        let (heap2, _) = recovered(&mut rs);
        let root = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root, None).unwrap(), &Value::Int(39));
    }

    #[test]
    fn crash_during_housekeeping_keeps_the_old_state() {
        // Regression: housekeeping used to switch to the new log before the
        // rewritten map was forced; a crash in that window recovered from an
        // empty log and lost the whole guardian state. The new log may only
        // supplant the old one after it is fully forced.
        let plan = argus_stable::FaultPlan::new();
        let mut rs = ShadowRs::create(MemProvider::fast().with_plan(plan.clone())).unwrap();
        let mut heap = Heap::with_stable_root();
        for i in 0..10 {
            commit_root(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        // Sweep the crash point across every device write of housekeeping.
        // The write budget comes from an un-faulted probe run: after the
        // switch its log's store has seen exactly the housekeeping writes.
        let total = {
            let mut probe = ShadowRs::create(MemProvider::fast()).unwrap();
            let mut h = Heap::with_stable_root();
            for i in 0..10 {
                commit_root(&mut probe, &mut h, aid(i + 1), Value::Int(i as i64));
            }
            probe
                .housekeeping(&h, HousekeepingMode::Compaction)
                .unwrap();
            probe.log().store().stats().snapshot().writes()
        };
        for k in 0..total {
            plan.heal();
            plan.arm_after_writes(k);
            let crashed = rs
                .housekeeping(&heap, HousekeepingMode::Compaction)
                .is_err();
            plan.heal();
            rs.simulate_crash().unwrap();
            let mut heap2 = Heap::new();
            rs.recover(&mut heap2).unwrap();
            let root = heap2.stable_root().unwrap();
            assert_eq!(
                heap2.read_value(root, None).unwrap(),
                &Value::Int(9),
                "crash at housekeeping write {k} (crashed={crashed}) lost state"
            );
            // Continue from the recovered state for the next crash point.
            heap = heap2;
        }
        // A final untroubled pass still works.
        plan.heal();
        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        let (heap3, _) = recovered(&mut rs);
        let root = heap3.stable_root().unwrap();
        assert_eq!(heap3.read_value(root, None).unwrap(), &Value::Int(9));
    }

    #[test]
    fn coordinator_state_survives() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        commit_root(&mut rs, &mut heap, aid(1), Value::Int(1));
        rs.committing(aid(7), &[GuardianId(0), GuardianId(1)])
            .unwrap();
        let (_, out) = recovered(&mut rs);
        assert_eq!(
            out.ct.committing_actions(),
            vec![(aid(7), vec![GuardianId(0), GuardianId(1)])]
        );
    }

    #[test]
    fn finished_coordinator_needs_no_restart() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        commit_root(&mut rs, &mut heap, aid(1), Value::Int(1));
        rs.committing(aid(8), &[GuardianId(0)]).unwrap();
        rs.done(aid(8)).unwrap();
        let (_, out) = recovered(&mut rs);
        assert!(out.ct.committing_actions().is_empty());
    }
}
