//! Recoverable objects: built-in atomic objects and mutex objects.

use crate::{ActionId, Uid, Value};
use std::collections::BTreeSet;
use std::fmt;

/// The flavor of a recoverable object, recorded in every data entry (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// A built-in atomic object (read/write locks, base + current versions).
    Atomic,
    /// A mutex object (single version, seize/release).
    Mutex,
}

impl fmt::Display for ObjKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjKind::Atomic => write!(f, "atomic"),
            ObjKind::Mutex => write!(f, "mutex"),
        }
    }
}

/// A built-in atomic object (§2.4.1).
///
/// "When a write lock is obtained, a version of the object is made (in
/// volatile memory), and the action operates on this version. If the action
/// ultimately commits, this version will be retained and the old version
/// discarded. If the action aborts, this version will be discarded, and the
/// old version retained."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicObject {
    /// The committed (base) version.
    pub base: Value,
    /// The uncommitted (current) version; present iff write-locked.
    pub current: Option<Value>,
    /// The write-lock holder.
    pub writer: Option<ActionId>,
    /// Read-lock holders.
    pub readers: BTreeSet<ActionId>,
}

impl AtomicObject {
    /// Creates an unlocked atomic object with the given base version.
    pub fn new(base: Value) -> Self {
        Self {
            base,
            current: None,
            writer: None,
            readers: BTreeSet::new(),
        }
    }

    /// The version an action observes: its own current version while it
    /// holds the write lock, otherwise the base version.
    pub fn version_for(&self, aid: Option<ActionId>) -> &Value {
        match (&self.current, self.writer, aid) {
            (Some(cur), Some(w), Some(a)) if w == a => cur,
            _ => &self.base,
        }
    }

    /// Whether any action other than `aid` holds a lock.
    pub fn locked_by_other(&self, aid: ActionId) -> bool {
        if let Some(w) = self.writer {
            if w != aid {
                return true;
            }
        }
        self.readers.iter().any(|r| *r != aid)
    }
}

/// A mutex object (§2.4.2): a container with a single current version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutexObject {
    /// The one and only version.
    pub value: Value,
    /// The action currently in possession via `seize`, if any.
    pub seized_by: Option<ActionId>,
}

impl MutexObject {
    /// Creates an unseized mutex object.
    pub fn new(value: Value) -> Self {
        Self {
            value,
            seized_by: None,
        }
    }
}

/// The body of a recoverable object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectBody {
    /// A built-in atomic object.
    Atomic(AtomicObject),
    /// A mutex object.
    Mutex(MutexObject),
}

impl ObjectBody {
    /// The object's kind tag.
    pub fn kind(&self) -> ObjKind {
        match self {
            ObjectBody::Atomic(_) => ObjKind::Atomic,
            ObjectBody::Mutex(_) => ObjKind::Mutex,
        }
    }
}

/// A recoverable object as it sits in volatile memory: kind + uid + data
/// (Figure 3-2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectSlot {
    /// The object's durable unique identifier.
    pub uid: Uid,
    /// The object's body.
    pub body: ObjectBody,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GuardianId;

    fn aid(n: u64) -> ActionId {
        ActionId::new(GuardianId(0), n)
    }

    #[test]
    fn version_for_prefers_writers_current() {
        let mut obj = AtomicObject::new(Value::Int(1));
        obj.current = Some(Value::Int(2));
        obj.writer = Some(aid(1));
        assert_eq!(obj.version_for(Some(aid(1))), &Value::Int(2));
        assert_eq!(obj.version_for(Some(aid(2))), &Value::Int(1));
        assert_eq!(obj.version_for(None), &Value::Int(1));
    }

    #[test]
    fn locked_by_other_ignores_own_locks() {
        let mut obj = AtomicObject::new(Value::Unit);
        obj.readers.insert(aid(1));
        assert!(!obj.locked_by_other(aid(1)));
        assert!(obj.locked_by_other(aid(2)));
        obj.readers.clear();
        obj.writer = Some(aid(3));
        obj.current = Some(Value::Unit);
        assert!(obj.locked_by_other(aid(1)));
        assert!(!obj.locked_by_other(aid(3)));
    }

    #[test]
    fn kind_tags() {
        assert_eq!(
            ObjectBody::Atomic(AtomicObject::new(Value::Unit)).kind(),
            ObjKind::Atomic
        );
        assert_eq!(
            ObjectBody::Mutex(MutexObject::new(Value::Unit)).kind(),
            ObjKind::Mutex
        );
        assert_eq!(ObjKind::Atomic.to_string(), "atomic");
        assert_eq!(ObjKind::Mutex.to_string(), "mutex");
    }
}
