//! The recoverable-object model (§2.4 and §3.3.3 of the thesis).
//!
//! A guardian's stable state is a graph of *recoverable objects*, which come
//! in two flavors:
//!
//! * **Built-in atomic objects** — two-phase read/write locking with volatile
//!   versions: acquiring a write lock creates a *current* version beside the
//!   committed *base* version; commit installs the current version, abort
//!   discards it.
//! * **Mutex objects** — a single current version guarded by `seize`, with
//!   the special recovery semantics of \[Weihl 82\]: once an action that
//!   modified a mutex *prepares*, the new mutex state must be restored after
//!   a crash even if that action later aborts.
//!
//! *Regular* objects (plain data) have no identity of their own: they live
//! inline inside the [`Value`] of a recoverable object and are copied with
//! it, which is exactly the sharing rule of the incremental copying algorithm
//! (§2.4.3): "sharing of objects is preserved only for shared recoverable
//! objects".
//!
//! [`Heap`] is the guardian's volatile memory; [`flatten_value`] implements the
//! incremental copy that turns a volatile object graph into a self-contained
//! value whose references to other recoverable objects are [`Uid`]s. The
//! stable-variables root (§3.3.3.2) is an ordinary atomic object with the
//! predefined uid [`Uid::STABLE_ROOT`].

mod flatten;
mod heap;
mod ids;
mod object;
mod value;

pub use flatten::{flatten_value, FlattenOutcome};
pub use heap::{Heap, HeapError, HeapResult};
pub use ids::{ActionId, GuardianId, HeapId, Uid};
pub use object::{AtomicObject, MutexObject, ObjKind, ObjectBody, ObjectSlot};
pub use value::{ObjRef, Value};
