//! Object values: the data field of a recoverable object.

use crate::{HeapId, Uid};
use std::fmt;

/// A reference from one object's data to a recoverable object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjRef {
    /// A volatile-memory reference (normal operation).
    Heap(HeapId),
    /// A uid reference (the flattened, on-log form; also the transient form
    /// during recovery before the final uid-to-pointer pass of §3.4.3).
    Uid(Uid),
}

/// The data portion of an object.
///
/// `Seq` models regular composite objects (records, arrays): they have no
/// identity and are copied inline with their containing recoverable object.
/// `Ref` is an edge to another recoverable object, which the incremental
/// copying algorithm translates to a [`Uid`] instead of copying (§2.4.3,
/// Figure 2-2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Nothing.
    Unit,
    /// A signed integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// A regular composite object, copied inline.
    Seq(Vec<Value>),
    /// A reference to a recoverable object.
    Ref(ObjRef),
}

impl Value {
    /// Convenience: a volatile reference.
    pub fn heap_ref(h: HeapId) -> Value {
        Value::Ref(ObjRef::Heap(h))
    }

    /// Convenience: a uid reference.
    pub fn uid_ref(u: Uid) -> Value {
        Value::Ref(ObjRef::Uid(u))
    }

    /// Visits every [`ObjRef`] in the value, outermost first.
    pub fn for_each_ref(&self, f: &mut impl FnMut(&ObjRef)) {
        match self {
            Value::Seq(items) => {
                for item in items {
                    item.for_each_ref(f);
                }
            }
            Value::Ref(r) => f(r),
            _ => {}
        }
    }

    /// Rewrites every [`ObjRef`] in place.
    pub fn map_refs(&mut self, f: &mut impl FnMut(ObjRef) -> ObjRef) {
        match self {
            Value::Seq(items) => {
                for item in items {
                    item.map_refs(f);
                }
            }
            Value::Ref(r) => *r = f(*r),
            _ => {}
        }
    }

    /// Collects the uids of every uid-reference in the value.
    pub fn collect_uid_refs(&self) -> Vec<Uid> {
        let mut uids = Vec::new();
        self.for_each_ref(&mut |r| {
            if let ObjRef::Uid(u) = r {
                uids.push(*u);
            }
        });
        uids
    }

    /// Returns `true` when the value contains no volatile references, i.e.
    /// it is in the flattened form that may be written to the log.
    pub fn is_flat(&self) -> bool {
        let mut flat = true;
        self.for_each_ref(&mut |r| {
            if matches!(r, ObjRef::Heap(_)) {
                flat = false;
            }
        });
        flat
    }

    /// Approximate in-memory size in bytes, used by the device cost model to
    /// charge proportionally for large values.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Unit | Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Str(s) => 4 + s.len(),
            Value::Bytes(b) => 4 + b.len(),
            Value::Seq(items) => 4 + items.iter().map(Value::approx_size).sum::<usize>(),
            Value::Ref(_) => 9,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::Seq(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Ref(ObjRef::Heap(h)) => write!(f, "&{h}"),
            Value::Ref(ObjRef::Uid(u)) => write!(f, "&{u}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::Seq(vec![
            Value::Int(1),
            Value::Seq(vec![Value::heap_ref(HeapId(2)), Value::Str("x".into())]),
            Value::uid_ref(Uid(9)),
        ])
    }

    #[test]
    fn for_each_ref_finds_nested_refs() {
        let mut seen = Vec::new();
        sample().for_each_ref(&mut |r| seen.push(*r));
        assert_eq!(seen, vec![ObjRef::Heap(HeapId(2)), ObjRef::Uid(Uid(9))]);
    }

    #[test]
    fn map_refs_rewrites_in_place() {
        let mut v = sample();
        v.map_refs(&mut |r| match r {
            ObjRef::Heap(_) => ObjRef::Uid(Uid(100)),
            other => other,
        });
        assert!(v.is_flat());
        assert_eq!(v.collect_uid_refs(), vec![Uid(100), Uid(9)]);
    }

    #[test]
    fn is_flat_detects_heap_refs() {
        assert!(!sample().is_flat());
        assert!(Value::Int(3).is_flat());
        assert!(Value::uid_ref(Uid(1)).is_flat());
    }

    #[test]
    fn approx_size_grows_with_content() {
        assert!(Value::Str("hello".into()).approx_size() > Value::Unit.approx_size());
        let nested = Value::Seq(vec![Value::Int(0); 10]);
        assert!(nested.approx_size() > 80);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(sample().to_string(), "[1, [&vm:2, \"x\"], &O9]");
    }
}
