//! The guardian's volatile memory.

use crate::{
    ActionId, AtomicObject, HeapId, MutexObject, ObjRef, ObjectBody, ObjectSlot, Uid, Value,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Errors from heap operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// The heap id names no live object.
    NoSuchObject(HeapId),
    /// No object with this uid exists in volatile memory.
    NoSuchUid(Uid),
    /// A lock could not be granted because another action holds one.
    LockConflict {
        obj: Uid,
        requester: ActionId,
        /// The conflicting holders at refusal time (writer first, then
        /// readers in id order).
        holders: Vec<ActionId>,
    },
    /// The operation required a write lock the action does not hold.
    NotWriteLocked { obj: Uid, aid: ActionId },
    /// The mutex is in another action's possession.
    MutexSeized { obj: Uid, requester: ActionId },
    /// The operation required possession of the mutex first.
    NotSeized { obj: Uid, aid: ActionId },
    /// The object is not of the kind the operation expects.
    WrongKind { obj: Uid },
    /// An object with this uid already exists (recovery double-insert).
    DuplicateUid(Uid),
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::NoSuchObject(h) => write!(f, "no object at {h}"),
            HeapError::NoSuchUid(u) => write!(f, "no object with uid {u}"),
            HeapError::LockConflict {
                obj,
                requester,
                holders,
            } => {
                write!(f, "lock conflict on {obj} for {requester}; held by ")?;
                for (i, h) in holders.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{h}")?;
                }
                Ok(())
            }
            HeapError::NotWriteLocked { obj, aid } => {
                write!(f, "{aid} does not hold a write lock on {obj}")
            }
            HeapError::MutexSeized { obj, requester } => {
                write!(f, "mutex {obj} is seized; {requester} must wait")
            }
            HeapError::NotSeized { obj, aid } => write!(f, "{aid} has not seized mutex {obj}"),
            HeapError::WrongKind { obj } => write!(f, "object {obj} has the wrong kind"),
            HeapError::DuplicateUid(u) => write!(f, "uid {u} already present"),
        }
    }
}

impl std::error::Error for HeapError {}

/// Result alias for heap operations.
pub type HeapResult<T> = Result<T, HeapError>;

/// The volatile object memory of one guardian.
///
/// Holds every recoverable object currently in volatile memory, indexed both
/// by [`HeapId`] (the "vm address" of the thesis's tables) and by [`Uid`].
/// Also owns the guardian's *stable counter*, the uid generator that recovery
/// resets past the largest restored uid (§3.2).
///
/// # Examples
///
/// ```
/// use argus_objects::{ActionId, GuardianId, Heap, Value};
///
/// let mut heap = Heap::new();
/// let aid = ActionId::new(GuardianId(0), 1);
/// let obj = heap.alloc_atomic(Value::Int(1), None);
///
/// // A write lock creates a current version; the base stays visible to
/// // everyone else until commit.
/// heap.acquire_write(obj, aid)?;
/// heap.write_value(obj, aid, |v| *v = Value::Int(2))?;
/// assert_eq!(heap.read_value(obj, None)?, &Value::Int(1));
/// assert_eq!(heap.read_value(obj, Some(aid))?, &Value::Int(2));
///
/// heap.commit_action(aid);
/// assert_eq!(heap.read_value(obj, None)?, &Value::Int(2));
/// # Ok::<(), argus_objects::HeapError>(())
/// ```
#[derive(Debug, Default)]
pub struct Heap {
    slots: Vec<Option<ObjectSlot>>,
    by_uid: HashMap<Uid, HeapId>,
    next_uid: u64,
}

impl Heap {
    /// Creates an empty heap. Uid 0 is reserved for the stable root.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            by_uid: HashMap::new(),
            next_uid: 1,
        }
    }

    /// Creates a heap containing a fresh stable-variables root object: an
    /// atomic object with the predefined uid [`Uid::STABLE_ROOT`] holding an
    /// empty sequence of `(name, value)` pairs.
    pub fn with_stable_root() -> Self {
        let mut heap = Self::new();
        heap.insert_with_uid(
            Uid::STABLE_ROOT,
            ObjectBody::Atomic(AtomicObject::new(Value::Seq(Vec::new()))),
        )
        .expect("fresh heap cannot contain the root already");
        heap
    }

    fn insert_slot(&mut self, slot: ObjectSlot) -> HeapId {
        let uid = slot.uid;
        let h = HeapId(self.slots.len() as u32);
        self.slots.push(Some(slot));
        self.by_uid.insert(uid, h);
        h
    }

    /// Draws a fresh uid from the stable counter.
    pub fn fresh_uid(&mut self) -> Uid {
        let uid = Uid(self.next_uid);
        self.next_uid += 1;
        uid
    }

    /// The next uid the counter would produce.
    pub fn next_uid(&self) -> u64 {
        self.next_uid
    }

    /// Resets the stable counter; recovery calls this with one past the
    /// largest restored uid so uids are never reused (§3.2).
    pub fn set_next_uid(&mut self, next: u64) {
        self.next_uid = next;
    }

    /// Allocates a new atomic object. Per §2.4.1, the creating action (when
    /// given) holds a read lock on it, and there is only a base version.
    pub fn alloc_atomic(&mut self, value: Value, creator: Option<ActionId>) -> HeapId {
        let uid = self.fresh_uid();
        let mut obj = AtomicObject::new(value);
        if let Some(aid) = creator {
            obj.readers.insert(aid);
        }
        self.insert_slot(ObjectSlot {
            uid,
            body: ObjectBody::Atomic(obj),
        })
    }

    /// Allocates a new mutex object.
    pub fn alloc_mutex(&mut self, value: Value) -> HeapId {
        let uid = self.fresh_uid();
        self.insert_slot(ObjectSlot {
            uid,
            body: ObjectBody::Mutex(MutexObject::new(value)),
        })
    }

    /// Inserts an object with a known uid — used by recovery when rebuilding
    /// volatile memory from the log.
    pub fn insert_with_uid(&mut self, uid: Uid, body: ObjectBody) -> HeapResult<HeapId> {
        if self.by_uid.contains_key(&uid) {
            return Err(HeapError::DuplicateUid(uid));
        }
        self.next_uid = self.next_uid.max(uid.0 + 1);
        Ok(self.insert_slot(ObjectSlot { uid, body }))
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.by_uid.len()
    }

    /// Whether the heap holds no objects.
    pub fn is_empty(&self) -> bool {
        self.by_uid.is_empty()
    }

    /// Looks up an object by heap id.
    pub fn get(&self, h: HeapId) -> HeapResult<&ObjectSlot> {
        self.slots
            .get(h.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(HeapError::NoSuchObject(h))
    }

    /// Looks up an object mutably by heap id.
    pub fn get_mut(&mut self, h: HeapId) -> HeapResult<&mut ObjectSlot> {
        self.slots
            .get_mut(h.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(HeapError::NoSuchObject(h))
    }

    /// The uid of the object at `h`.
    pub fn uid_of(&self, h: HeapId) -> HeapResult<Uid> {
        Ok(self.get(h)?.uid)
    }

    /// The volatile address of the object with uid `uid`, if resident.
    pub fn lookup(&self, uid: Uid) -> Option<HeapId> {
        self.by_uid.get(&uid).copied()
    }

    /// The stable-variables root object, if present.
    pub fn stable_root(&self) -> Option<HeapId> {
        self.lookup(Uid::STABLE_ROOT)
    }

    /// Iterates over `(heap id, object)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (HeapId, &ObjectSlot)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|slot| (HeapId(i as u32), slot)))
    }

    // ---- Atomic-object locking (§2.4.1) --------------------------------

    /// Acquires a read lock on an atomic object for `aid`.
    pub fn acquire_read(&mut self, h: HeapId, aid: ActionId) -> HeapResult<()> {
        let slot = self.get_mut(h)?;
        let uid = slot.uid;
        match &mut slot.body {
            ObjectBody::Atomic(obj) => {
                if let Some(w) = obj.writer {
                    if w != aid {
                        return Err(HeapError::LockConflict {
                            obj: uid,
                            requester: aid,
                            holders: vec![w],
                        });
                    }
                }
                obj.readers.insert(aid);
                Ok(())
            }
            ObjectBody::Mutex(_) => Err(HeapError::WrongKind { obj: uid }),
        }
    }

    /// Acquires a write lock on an atomic object for `aid`, creating the
    /// current version (a copy of the base) if this is the first write.
    pub fn acquire_write(&mut self, h: HeapId, aid: ActionId) -> HeapResult<()> {
        let slot = self.get_mut(h)?;
        let uid = slot.uid;
        match &mut slot.body {
            ObjectBody::Atomic(obj) => {
                if obj.locked_by_other(aid) {
                    let mut holders: Vec<ActionId> =
                        obj.writer.iter().copied().filter(|w| *w != aid).collect();
                    holders.extend(obj.readers.iter().copied().filter(|r| *r != aid));
                    return Err(HeapError::LockConflict {
                        obj: uid,
                        requester: aid,
                        holders,
                    });
                }
                if obj.writer.is_none() {
                    obj.writer = Some(aid);
                    obj.current = Some(obj.base.clone());
                }
                obj.readers.remove(&aid); // upgrade subsumes the read lock
                Ok(())
            }
            ObjectBody::Mutex(_) => Err(HeapError::WrongKind { obj: uid }),
        }
    }

    /// Reads the version of an atomic object visible to `aid` (or the base
    /// version for `None`). For mutex objects, the single current version.
    pub fn read_value(&self, h: HeapId, aid: Option<ActionId>) -> HeapResult<&Value> {
        let slot = self.get(h)?;
        match &slot.body {
            ObjectBody::Atomic(obj) => Ok(obj.version_for(aid)),
            ObjectBody::Mutex(obj) => Ok(&obj.value),
        }
    }

    /// Mutates the current version of a write-locked atomic object.
    pub fn write_value(
        &mut self,
        h: HeapId,
        aid: ActionId,
        f: impl FnOnce(&mut Value),
    ) -> HeapResult<()> {
        let slot = self.get_mut(h)?;
        let uid = slot.uid;
        match &mut slot.body {
            ObjectBody::Atomic(obj) => {
                if obj.writer != Some(aid) {
                    return Err(HeapError::NotWriteLocked { obj: uid, aid });
                }
                f(obj
                    .current
                    .as_mut()
                    .expect("write lock implies a current version"));
                Ok(())
            }
            ObjectBody::Mutex(_) => Err(HeapError::WrongKind { obj: uid }),
        }
    }

    // ---- Lock queries (for the concurrency-control subsystem) -----------

    /// The current lock holders of the object at `h`: the write-lock holder
    /// (or mutex possessor) and the read-lock holders in id order.
    pub fn lock_holders(&self, h: HeapId) -> HeapResult<(Option<ActionId>, Vec<ActionId>)> {
        let slot = self.get(h)?;
        Ok(match &slot.body {
            ObjectBody::Atomic(obj) => (obj.writer, obj.readers.iter().copied().collect()),
            ObjectBody::Mutex(obj) => (obj.seized_by, Vec::new()),
        })
    }

    /// Whether `aid` holds any lock (read or write) or possession on the
    /// object at `h`.
    pub fn holds_lock(&self, h: HeapId, aid: ActionId) -> bool {
        match self.get(h).map(|s| &s.body) {
            Ok(ObjectBody::Atomic(obj)) => obj.writer == Some(aid) || obj.readers.contains(&aid),
            Ok(ObjectBody::Mutex(obj)) => obj.seized_by == Some(aid),
            Err(_) => false,
        }
    }

    /// The uids of every object on which `aid` holds a lock or possession,
    /// in uid order — the post-abort emptiness check and the stale-lock
    /// lint both audit with this.
    pub fn locks_held_by(&self, aid: ActionId) -> Vec<Uid> {
        let mut uids: Vec<Uid> = self
            .slots
            .iter()
            .flatten()
            .filter(|slot| match &slot.body {
                ObjectBody::Atomic(obj) => obj.writer == Some(aid) || obj.readers.contains(&aid),
                ObjectBody::Mutex(obj) => obj.seized_by == Some(aid),
            })
            .map(|slot| slot.uid)
            .collect();
        uids.sort_unstable();
        uids
    }

    // ---- Mutex objects (§2.4.2) -----------------------------------------

    /// Seizes a mutex object for `aid`.
    pub fn seize(&mut self, h: HeapId, aid: ActionId) -> HeapResult<()> {
        let slot = self.get_mut(h)?;
        let uid = slot.uid;
        match &mut slot.body {
            ObjectBody::Mutex(obj) => match obj.seized_by {
                Some(holder) if holder != aid => Err(HeapError::MutexSeized {
                    obj: uid,
                    requester: aid,
                }),
                _ => {
                    obj.seized_by = Some(aid);
                    Ok(())
                }
            },
            ObjectBody::Atomic(_) => Err(HeapError::WrongKind { obj: uid }),
        }
    }

    /// Releases a seized mutex object.
    pub fn release(&mut self, h: HeapId, aid: ActionId) -> HeapResult<()> {
        let slot = self.get_mut(h)?;
        let uid = slot.uid;
        match &mut slot.body {
            ObjectBody::Mutex(obj) => {
                if obj.seized_by != Some(aid) {
                    return Err(HeapError::NotSeized { obj: uid, aid });
                }
                obj.seized_by = None;
                Ok(())
            }
            ObjectBody::Atomic(_) => Err(HeapError::WrongKind { obj: uid }),
        }
    }

    /// Mutates a mutex object's value; the caller must have seized it.
    pub fn mutate_mutex(
        &mut self,
        h: HeapId,
        aid: ActionId,
        f: impl FnOnce(&mut Value),
    ) -> HeapResult<()> {
        let slot = self.get_mut(h)?;
        let uid = slot.uid;
        match &mut slot.body {
            ObjectBody::Mutex(obj) => {
                if obj.seized_by != Some(aid) {
                    return Err(HeapError::NotSeized { obj: uid, aid });
                }
                f(&mut obj.value);
                Ok(())
            }
            ObjectBody::Atomic(_) => Err(HeapError::WrongKind { obj: uid }),
        }
    }

    // ---- Action completion ----------------------------------------------

    /// Installs every current version written by `aid` and releases all of
    /// its locks (local effect of a commit).
    pub fn commit_action(&mut self, aid: ActionId) {
        for slot in self.slots.iter_mut().flatten() {
            match &mut slot.body {
                ObjectBody::Atomic(obj) => {
                    if obj.writer == Some(aid) {
                        obj.base = obj.current.take().expect("writer implies current");
                        obj.writer = None;
                    }
                    obj.readers.remove(&aid);
                }
                ObjectBody::Mutex(obj) => {
                    if obj.seized_by == Some(aid) {
                        obj.seized_by = None;
                    }
                }
            }
        }
    }

    /// Discards every current version written by `aid` and releases all of
    /// its locks (local effect of an abort). Mutex values keep their new
    /// state — mutations under `seize` are not undone by abort (§2.4.2).
    pub fn abort_action(&mut self, aid: ActionId) {
        for slot in self.slots.iter_mut().flatten() {
            match &mut slot.body {
                ObjectBody::Atomic(obj) => {
                    if obj.writer == Some(aid) {
                        obj.current = None;
                        obj.writer = None;
                    }
                    obj.readers.remove(&aid);
                }
                ObjectBody::Mutex(obj) => {
                    if obj.seized_by == Some(aid) {
                        obj.seized_by = None;
                    }
                }
            }
        }
    }

    /// The final pass of recovery (§3.4.3): replaces every uid reference in
    /// every resident object's versions with the volatile-memory reference of
    /// the restored object. Uids with no resident object are left in place
    /// (they can only occur in versions that are themselves unreachable).
    pub fn resolve_uid_refs(&mut self) {
        let by_uid = self.by_uid.clone();
        let fix = |value: &mut Value| {
            value.map_refs(&mut |r| match r {
                ObjRef::Uid(u) => by_uid.get(&u).map(|h| ObjRef::Heap(*h)).unwrap_or(r),
                heap_ref => heap_ref,
            });
        };
        for slot in self.slots.iter_mut().flatten() {
            match &mut slot.body {
                ObjectBody::Atomic(obj) => {
                    fix(&mut obj.base);
                    if let Some(cur) = &mut obj.current {
                        fix(cur);
                    }
                }
                ObjectBody::Mutex(obj) => fix(&mut obj.value),
            }
        }
    }

    // ---- Accessibility (§3.3.3.2) ---------------------------------------

    /// Walks the object graph from the stable root and returns the uids of
    /// every reachable recoverable object, following references in both base
    /// and current versions (the rebuilt accessibility set of recovery
    /// step 4).
    pub fn accessible_uids(&self) -> HashSet<Uid> {
        let mut seen = HashSet::new();
        let Some(root) = self.stable_root() else {
            return seen;
        };
        let mut queue = VecDeque::from([root]);
        seen.insert(Uid::STABLE_ROOT);
        while let Some(h) = queue.pop_front() {
            let Ok(slot) = self.get(h) else { continue };
            let mut visit = |value: &Value| {
                value.for_each_ref(&mut |r| {
                    let target = match r {
                        ObjRef::Heap(hh) => Some(*hh),
                        ObjRef::Uid(u) => self.lookup(*u),
                    };
                    if let Some(hh) = target {
                        if let Ok(s) = self.get(hh) {
                            if seen.insert(s.uid) {
                                queue.push_back(hh);
                            }
                        }
                    }
                });
            };
            match &slot.body {
                ObjectBody::Atomic(obj) => {
                    visit(&obj.base);
                    if let Some(cur) = &obj.current {
                        visit(cur);
                    }
                }
                ObjectBody::Mutex(obj) => visit(&obj.value),
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GuardianId;

    fn aid(n: u64) -> ActionId {
        ActionId::new(GuardianId(0), n)
    }

    #[test]
    fn with_stable_root_reserves_uid_zero() {
        let heap = Heap::with_stable_root();
        let root = heap.stable_root().unwrap();
        assert_eq!(heap.uid_of(root).unwrap(), Uid::STABLE_ROOT);
        assert_eq!(heap.len(), 1);
    }

    #[test]
    fn alloc_assigns_increasing_uids() {
        let mut heap = Heap::with_stable_root();
        let a = heap.alloc_atomic(Value::Int(1), None);
        let b = heap.alloc_mutex(Value::Int(2));
        assert!(heap.uid_of(a).unwrap() < heap.uid_of(b).unwrap());
        assert_eq!(heap.lookup(heap.uid_of(b).unwrap()), Some(b));
    }

    #[test]
    fn creator_holds_read_lock_on_new_atomic() {
        let mut heap = Heap::new();
        let h = heap.alloc_atomic(Value::Unit, Some(aid(1)));
        match &heap.get(h).unwrap().body {
            ObjectBody::Atomic(obj) => assert!(obj.readers.contains(&aid(1))),
            _ => panic!("expected atomic"),
        }
    }

    #[test]
    fn write_lock_creates_version_and_isolates() {
        let mut heap = Heap::new();
        let h = heap.alloc_atomic(Value::Int(10), None);
        heap.acquire_write(h, aid(1)).unwrap();
        heap.write_value(h, aid(1), |v| *v = Value::Int(20))
            .unwrap();
        // The writer sees its version; everyone else sees the base.
        assert_eq!(heap.read_value(h, Some(aid(1))).unwrap(), &Value::Int(20));
        assert_eq!(heap.read_value(h, Some(aid(2))).unwrap(), &Value::Int(10));
        assert_eq!(heap.read_value(h, None).unwrap(), &Value::Int(10));
    }

    #[test]
    fn conflicting_locks_are_refused() {
        let mut heap = Heap::new();
        let h = heap.alloc_atomic(Value::Unit, None);
        heap.acquire_write(h, aid(1)).unwrap();
        assert!(matches!(
            heap.acquire_write(h, aid(2)),
            Err(HeapError::LockConflict { .. })
        ));
        assert!(matches!(
            heap.acquire_read(h, aid(2)),
            Err(HeapError::LockConflict { .. })
        ));
        // Re-acquisition by the holder is fine.
        heap.acquire_write(h, aid(1)).unwrap();
        heap.acquire_read(h, aid(1)).unwrap();
    }

    #[test]
    fn read_locks_block_writers_but_not_readers() {
        let mut heap = Heap::new();
        let h = heap.alloc_atomic(Value::Unit, None);
        heap.acquire_read(h, aid(1)).unwrap();
        heap.acquire_read(h, aid(2)).unwrap();
        assert!(matches!(
            heap.acquire_write(h, aid(3)),
            Err(HeapError::LockConflict { .. })
        ));
    }

    #[test]
    fn read_lock_upgrades_to_write_when_sole_reader() {
        let mut heap = Heap::new();
        let h = heap.alloc_atomic(Value::Int(0), None);
        heap.acquire_read(h, aid(1)).unwrap();
        heap.acquire_write(h, aid(1)).unwrap();
        heap.write_value(h, aid(1), |v| *v = Value::Int(1)).unwrap();
    }

    #[test]
    fn commit_installs_current_version() {
        let mut heap = Heap::new();
        let h = heap.alloc_atomic(Value::Int(1), None);
        heap.acquire_write(h, aid(1)).unwrap();
        heap.write_value(h, aid(1), |v| *v = Value::Int(2)).unwrap();
        heap.commit_action(aid(1));
        assert_eq!(heap.read_value(h, None).unwrap(), &Value::Int(2));
        // Locks are gone.
        heap.acquire_write(h, aid(2)).unwrap();
    }

    #[test]
    fn abort_discards_current_version() {
        let mut heap = Heap::new();
        let h = heap.alloc_atomic(Value::Int(1), None);
        heap.acquire_write(h, aid(1)).unwrap();
        heap.write_value(h, aid(1), |v| *v = Value::Int(2)).unwrap();
        heap.abort_action(aid(1));
        assert_eq!(heap.read_value(h, None).unwrap(), &Value::Int(1));
    }

    #[test]
    fn abort_keeps_mutex_mutations() {
        let mut heap = Heap::new();
        let h = heap.alloc_mutex(Value::Int(1));
        heap.seize(h, aid(1)).unwrap();
        heap.mutate_mutex(h, aid(1), |v| *v = Value::Int(9))
            .unwrap();
        heap.abort_action(aid(1));
        assert_eq!(heap.read_value(h, None).unwrap(), &Value::Int(9));
    }

    #[test]
    fn seize_is_exclusive() {
        let mut heap = Heap::new();
        let h = heap.alloc_mutex(Value::Unit);
        heap.seize(h, aid(1)).unwrap();
        assert!(matches!(
            heap.seize(h, aid(2)),
            Err(HeapError::MutexSeized { .. })
        ));
        heap.release(h, aid(1)).unwrap();
        heap.seize(h, aid(2)).unwrap();
    }

    #[test]
    fn mutex_mutation_requires_possession() {
        let mut heap = Heap::new();
        let h = heap.alloc_mutex(Value::Unit);
        assert!(matches!(
            heap.mutate_mutex(h, aid(1), |_| {}),
            Err(HeapError::NotSeized { .. })
        ));
    }

    #[test]
    fn lock_conflict_reports_holders() {
        let mut heap = Heap::new();
        let h = heap.alloc_atomic(Value::Unit, None);
        heap.acquire_read(h, aid(1)).unwrap();
        heap.acquire_read(h, aid(2)).unwrap();
        match heap.acquire_write(h, aid(3)) {
            Err(HeapError::LockConflict { holders, .. }) => {
                assert_eq!(holders, vec![aid(1), aid(2)]);
            }
            other => panic!("expected conflict, got {other:?}"),
        }
        let msg = heap.acquire_write(h, aid(3)).unwrap_err().to_string();
        assert!(msg.contains("held by T0.1, T0.2"), "display: {msg}");
    }

    #[test]
    fn lock_queries_see_every_holder() {
        let mut heap = Heap::new();
        let a = heap.alloc_atomic(Value::Unit, None);
        let m = heap.alloc_mutex(Value::Unit);
        heap.acquire_write(a, aid(1)).unwrap();
        heap.seize(m, aid(1)).unwrap();
        assert_eq!(heap.lock_holders(a).unwrap(), (Some(aid(1)), vec![]));
        assert_eq!(heap.lock_holders(m).unwrap(), (Some(aid(1)), vec![]));
        assert!(heap.holds_lock(a, aid(1)) && !heap.holds_lock(a, aid(2)));
        let held = heap.locks_held_by(aid(1));
        assert_eq!(held, vec![heap.uid_of(a).unwrap(), heap.uid_of(m).unwrap()]);
        heap.abort_action(aid(1));
        heap.release(m, aid(1)).ok();
        assert!(heap.locks_held_by(aid(1)).is_empty());
    }

    #[test]
    fn kind_mismatches_are_rejected() {
        let mut heap = Heap::new();
        let a = heap.alloc_atomic(Value::Unit, None);
        let m = heap.alloc_mutex(Value::Unit);
        assert!(matches!(
            heap.seize(a, aid(1)),
            Err(HeapError::WrongKind { .. })
        ));
        assert!(matches!(
            heap.acquire_write(m, aid(1)),
            Err(HeapError::WrongKind { .. })
        ));
    }

    #[test]
    fn insert_with_uid_rejects_duplicates_and_bumps_counter() {
        let mut heap = Heap::new();
        heap.insert_with_uid(Uid(41), ObjectBody::Mutex(MutexObject::new(Value::Unit)))
            .unwrap();
        assert!(matches!(
            heap.insert_with_uid(Uid(41), ObjectBody::Mutex(MutexObject::new(Value::Unit))),
            Err(HeapError::DuplicateUid(_))
        ));
        assert!(heap.next_uid() > 41);
    }

    #[test]
    fn resolve_uid_refs_turns_uids_into_pointers() {
        let mut heap = Heap::new();
        let a = heap
            .insert_with_uid(Uid(5), ObjectBody::Atomic(AtomicObject::new(Value::Int(1))))
            .unwrap();
        let b = heap
            .insert_with_uid(
                Uid(6),
                ObjectBody::Mutex(MutexObject::new(Value::Seq(vec![
                    Value::uid_ref(Uid(5)),
                    Value::uid_ref(Uid(999)), // dangling: left alone
                ]))),
            )
            .unwrap();
        heap.resolve_uid_refs();
        assert_eq!(
            heap.read_value(b, None).unwrap(),
            &Value::Seq(vec![Value::heap_ref(a), Value::uid_ref(Uid(999))])
        );
    }

    #[test]
    fn accessibility_follows_refs_from_root() {
        let mut heap = Heap::with_stable_root();
        let a = heap.alloc_atomic(Value::Unit, None);
        let b = heap.alloc_mutex(Value::heap_ref(a));
        let orphan = heap.alloc_atomic(Value::Unit, None);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, aid(1)).unwrap();
        heap.write_value(root, aid(1), |v| *v = Value::Seq(vec![Value::heap_ref(b)]))
            .unwrap();
        heap.commit_action(aid(1));
        let acc = heap.accessible_uids();
        assert!(acc.contains(&heap.uid_of(b).unwrap()));
        assert!(acc.contains(&heap.uid_of(a).unwrap()));
        assert!(!acc.contains(&heap.uid_of(orphan).unwrap()));
    }

    #[test]
    fn accessibility_sees_uncommitted_current_versions() {
        let mut heap = Heap::with_stable_root();
        let new_obj = heap.alloc_atomic(Value::Unit, Some(aid(1)));
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, aid(1)).unwrap();
        heap.write_value(root, aid(1), |v| {
            *v = Value::Seq(vec![Value::heap_ref(new_obj)])
        })
        .unwrap();
        // Not yet committed, but the current version makes it reachable.
        let acc = heap.accessible_uids();
        assert!(acc.contains(&heap.uid_of(new_obj).unwrap()));
    }
}
