//! The incremental copying algorithm's flattening step (§2.4.3, §3.3.3.1).

use crate::{Heap, HeapId, HeapResult, ObjRef, Value};

/// The result of flattening one object version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlattenOutcome {
    /// The flattened value: all regular data copied inline, every reference
    /// to a recoverable object replaced by its uid (Figure 3-4).
    pub value: Value,
    /// The recoverable objects the value references, in first-encounter
    /// order with duplicates removed. The writing algorithm checks each of
    /// these against the accessibility set to discover newly accessible
    /// objects (§3.3.3.2).
    pub referenced: Vec<HeapId>,
}

/// Flattens `value` against `heap`.
///
/// Copies the data portion — including contained regular objects — but not
/// any contained recoverable objects: "Any references to other recoverable
/// objects are translated from their volatile addresses to their
/// corresponding stable storage references" (§2.4.3). A reference that is
/// already a uid (possible mid-recovery) is preserved and resolved through
/// the heap if the object is resident.
pub fn flatten_value(heap: &Heap, value: &Value) -> HeapResult<FlattenOutcome> {
    let mut referenced = Vec::new();
    let flat = go(heap, value, &mut referenced)?;
    Ok(FlattenOutcome {
        value: flat,
        referenced,
    })
}

fn go(heap: &Heap, value: &Value, referenced: &mut Vec<HeapId>) -> HeapResult<Value> {
    Ok(match value {
        Value::Seq(items) => {
            let mut copied = Vec::with_capacity(items.len());
            for item in items {
                copied.push(go(heap, item, referenced)?);
            }
            Value::Seq(copied)
        }
        Value::Ref(ObjRef::Heap(h)) => {
            let uid = heap.uid_of(*h)?;
            if !referenced.contains(h) {
                referenced.push(*h);
            }
            Value::uid_ref(uid)
        }
        Value::Ref(ObjRef::Uid(u)) => {
            if let Some(h) = heap.lookup(*u) {
                if !referenced.contains(&h) {
                    referenced.push(h);
                }
            }
            Value::uid_ref(*u)
        }
        leaf => leaf.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HeapError, Uid};

    #[test]
    fn replaces_heap_refs_with_uids() {
        let mut heap = Heap::new();
        let target = heap.alloc_atomic(Value::Int(5), None);
        let uid = heap.uid_of(target).unwrap();
        let value = Value::Seq(vec![Value::Int(1), Value::heap_ref(target)]);
        let out = flatten_value(&heap, &value).unwrap();
        assert_eq!(
            out.value,
            Value::Seq(vec![Value::Int(1), Value::uid_ref(uid)])
        );
        assert_eq!(out.referenced, vec![target]);
        assert!(out.value.is_flat());
    }

    #[test]
    fn copies_regular_objects_inline() {
        // Figure 3-3: a regular object containing a reference to a
        // recoverable object is copied, and the inner reference replaced.
        let mut heap = Heap::new();
        let o4 = heap.alloc_atomic(Value::Int(4), None);
        let regular = Value::Seq(vec![Value::Str("reg".into()), Value::heap_ref(o4)]);
        let value = Value::Seq(vec![regular]);
        let out = flatten_value(&heap, &value).unwrap();
        let uid4 = heap.uid_of(o4).unwrap();
        assert_eq!(
            out.value,
            Value::Seq(vec![Value::Seq(vec![
                Value::Str("reg".into()),
                Value::uid_ref(uid4)
            ])])
        );
        assert_eq!(out.referenced, vec![o4]);
    }

    #[test]
    fn deduplicates_repeated_references() {
        let mut heap = Heap::new();
        let t = heap.alloc_mutex(Value::Unit);
        let value = Value::Seq(vec![Value::heap_ref(t), Value::heap_ref(t)]);
        let out = flatten_value(&heap, &value).unwrap();
        assert_eq!(out.referenced, vec![t]);
    }

    #[test]
    fn keeps_existing_uid_refs() {
        let heap = Heap::new();
        let value = Value::uid_ref(Uid(77));
        let out = flatten_value(&heap, &value).unwrap();
        assert_eq!(out.value, Value::uid_ref(Uid(77)));
        assert!(out.referenced.is_empty());
    }

    #[test]
    fn dangling_heap_ref_is_an_error() {
        let heap = Heap::new();
        let value = Value::heap_ref(HeapId(9));
        assert!(matches!(
            flatten_value(&heap, &value),
            Err(HeapError::NoSuchObject(_))
        ));
    }

    #[test]
    fn leaves_are_cloned() {
        let heap = Heap::new();
        for v in [
            Value::Unit,
            Value::Int(3),
            Value::Bool(true),
            Value::Bytes(vec![1, 2]),
        ] {
            let out = flatten_value(&heap, &v).unwrap();
            assert_eq!(out.value, v);
            assert!(out.referenced.is_empty());
        }
    }
}
