//! The participant state machine (§2.2.2).

use crate::coordinator::tkey;
use crate::Msg;
use argus_objects::{ActionId, GuardianId};
use argus_obs::Event;

/// Where the participant stands in the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartPhase {
    /// Prepare received; the local prepare (data entries + `prepared`
    /// record) is being executed.
    Preparing,
    /// `prepared` record forced: the point of no return — the participant
    /// must await the verdict.
    Prepared,
    /// `committed` record forced.
    Committed,
    /// `aborted` record forced (or the prepare was refused).
    Aborted,
}

/// An effect the guardian must execute on the participant's behalf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartEffect {
    /// Run the local prepare: write the MOS data entries and force the
    /// `prepared` record, then call [`Participant::prepare_succeeded`] or
    /// [`Participant::prepare_failed`].
    PrepareLocally,
    /// Force the `committed` record, install the action's versions, then
    /// call [`Participant::commit_forced`].
    ForceCommit,
    /// Force the `aborted` record, discard the action's versions, then call
    /// [`Participant::abort_forced`].
    ForceAbort,
    /// Send a protocol message.
    Send {
        /// Destination (the coordinator).
        to: GuardianId,
        /// The message.
        msg: Msg,
    },
    /// The action's fate is final at this participant.
    Finished {
        /// The verdict.
        committed: bool,
    },
}

/// A participant's side of one action's two-phase commit.
#[derive(Debug, Clone)]
pub struct Participant {
    /// The action.
    pub aid: ActionId,
    /// The coordinator's guardian (recoverable from the action id, §2.2.2).
    pub coordinator: GuardianId,
    phase: PartPhase,
}

impl Participant {
    /// Creates a participant that has just received the prepare message.
    pub fn on_prepare(aid: ActionId, coordinator: GuardianId) -> (Self, Vec<PartEffect>) {
        argus_obs::current().inc("twopc.part.prepares");
        let p = Self {
            aid,
            coordinator,
            phase: PartPhase::Preparing,
        };
        (p, vec![PartEffect::PrepareLocally])
    }

    /// Resumes an in-doubt participant after recovery: it must query its
    /// coordinator for the verdict (§2.2.2).
    pub fn resume_in_doubt(aid: ActionId, coordinator: GuardianId) -> (Self, Vec<PartEffect>) {
        argus_obs::current().inc("twopc.part.resumed_in_doubt");
        let p = Self {
            aid,
            coordinator,
            phase: PartPhase::Prepared,
        };
        let effects = vec![PartEffect::Send {
            to: coordinator,
            msg: Msg::QueryOutcome { aid },
        }];
        (p, effects)
    }

    /// Current phase.
    pub fn phase(&self) -> PartPhase {
        self.phase
    }

    /// The local prepare finished: data entries and `prepared` record are on
    /// stable storage.
    pub fn prepare_succeeded(&mut self) -> Vec<PartEffect> {
        let obs = argus_obs::current();
        obs.inc("twopc.part.prepare_ok");
        obs.event(Event::VoteSent { ok: true });
        argus_trace::current().instant(
            "twopc",
            "vote_sent",
            self.aid.coordinator.0,
            Some(tkey(self.aid)),
            &[("ok", 1)],
        );
        self.phase = PartPhase::Prepared;
        vec![PartEffect::Send {
            to: self.coordinator,
            msg: Msg::PrepareOk { aid: self.aid },
        }]
    }

    /// The local prepare could not run (lock conflict, unknown action, …):
    /// reply aborted (§2.2.2).
    pub fn prepare_failed(&mut self) -> Vec<PartEffect> {
        let obs = argus_obs::current();
        obs.inc("twopc.part.prepare_refused");
        obs.event(Event::VoteSent { ok: false });
        argus_trace::current().instant(
            "twopc",
            "vote_sent",
            self.aid.coordinator.0,
            Some(tkey(self.aid)),
            &[("ok", 0)],
        );
        self.phase = PartPhase::Aborted;
        vec![PartEffect::Send {
            to: self.coordinator,
            msg: Msg::PrepareRefused { aid: self.aid },
        }]
    }

    /// Feeds an incoming protocol message.
    pub fn on_msg(&mut self, msg: &Msg) -> Vec<PartEffect> {
        match (msg, self.phase) {
            (
                Msg::Commit { .. }
                | Msg::Outcome {
                    committed: true, ..
                },
                PartPhase::Prepared,
            ) => {
                vec![PartEffect::ForceCommit]
            }
            (
                Msg::Abort { .. }
                | Msg::Outcome {
                    committed: false, ..
                },
                PartPhase::Prepared,
            ) => {
                vec![PartEffect::ForceAbort]
            }
            // Duplicate verdicts after resolution: re-acknowledge.
            (Msg::Commit { .. }, PartPhase::Committed) => {
                vec![PartEffect::Send {
                    to: self.coordinator,
                    msg: Msg::CommitAck { aid: self.aid },
                }]
            }
            (Msg::Abort { .. }, PartPhase::Aborted) => {
                vec![PartEffect::Send {
                    to: self.coordinator,
                    msg: Msg::AbortAck { aid: self.aid },
                }]
            }
            _ => Vec::new(),
        }
    }

    /// The `committed` record is forced.
    pub fn commit_forced(&mut self) -> Vec<PartEffect> {
        argus_obs::current().inc("twopc.part.commits");
        self.phase = PartPhase::Committed;
        vec![
            PartEffect::Send {
                to: self.coordinator,
                msg: Msg::CommitAck { aid: self.aid },
            },
            PartEffect::Finished { committed: true },
        ]
    }

    /// The `aborted` record is forced.
    pub fn abort_forced(&mut self) -> Vec<PartEffect> {
        argus_obs::current().inc("twopc.part.aborts");
        self.phase = PartPhase::Aborted;
        vec![
            PartEffect::Send {
                to: self.coordinator,
                msg: Msg::AbortAck { aid: self.aid },
            },
            PartEffect::Finished { committed: false },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gid(n: u32) -> GuardianId {
        GuardianId(n)
    }

    fn aid() -> ActionId {
        ActionId::new(gid(0), 1)
    }

    #[test]
    fn happy_path() {
        let (mut p, effects) = Participant::on_prepare(aid(), gid(0));
        assert_eq!(effects, vec![PartEffect::PrepareLocally]);
        let effects = p.prepare_succeeded();
        assert_eq!(
            effects,
            vec![PartEffect::Send {
                to: gid(0),
                msg: Msg::PrepareOk { aid: aid() }
            }]
        );
        assert_eq!(p.phase(), PartPhase::Prepared);
        let effects = p.on_msg(&Msg::Commit { aid: aid() });
        assert_eq!(effects, vec![PartEffect::ForceCommit]);
        let effects = p.commit_forced();
        assert_eq!(effects.len(), 2);
        assert_eq!(p.phase(), PartPhase::Committed);
    }

    #[test]
    fn abort_path() {
        let (mut p, _) = Participant::on_prepare(aid(), gid(0));
        p.prepare_succeeded();
        assert_eq!(
            p.on_msg(&Msg::Abort { aid: aid() }),
            vec![PartEffect::ForceAbort]
        );
        let effects = p.abort_forced();
        assert!(matches!(
            effects[1],
            PartEffect::Finished { committed: false }
        ));
    }

    #[test]
    fn failed_prepare_refuses() {
        let (mut p, _) = Participant::on_prepare(aid(), gid(0));
        let effects = p.prepare_failed();
        assert_eq!(
            effects,
            vec![PartEffect::Send {
                to: gid(0),
                msg: Msg::PrepareRefused { aid: aid() }
            }]
        );
        assert_eq!(p.phase(), PartPhase::Aborted);
    }

    #[test]
    fn in_doubt_resume_queries_coordinator() {
        let (p, effects) = Participant::resume_in_doubt(aid(), gid(3));
        assert_eq!(p.phase(), PartPhase::Prepared);
        assert_eq!(
            effects,
            vec![PartEffect::Send {
                to: gid(3),
                msg: Msg::QueryOutcome { aid: aid() }
            }]
        );
    }

    #[test]
    fn outcome_replies_resolve_in_doubt_participants() {
        let (mut p, _) = Participant::resume_in_doubt(aid(), gid(0));
        assert_eq!(
            p.on_msg(&Msg::Outcome {
                aid: aid(),
                committed: true
            }),
            vec![PartEffect::ForceCommit]
        );
        let (mut p, _) = Participant::resume_in_doubt(aid(), gid(0));
        assert_eq!(
            p.on_msg(&Msg::Outcome {
                aid: aid(),
                committed: false
            }),
            vec![PartEffect::ForceAbort]
        );
    }

    #[test]
    fn duplicate_verdicts_reack() {
        let (mut p, _) = Participant::on_prepare(aid(), gid(0));
        p.prepare_succeeded();
        p.on_msg(&Msg::Commit { aid: aid() });
        p.commit_forced();
        // The coordinator retried: just re-acknowledge.
        assert_eq!(
            p.on_msg(&Msg::Commit { aid: aid() }),
            vec![PartEffect::Send {
                to: gid(0),
                msg: Msg::CommitAck { aid: aid() }
            }]
        );
        // Stale prepare or abort is ignored once committed.
        assert!(p.on_msg(&Msg::Abort { aid: aid() }).is_empty());
    }
}
