//! Two-phase commit (§2.2 of the thesis).
//!
//! Pure state machines for the coordinator and the participant. Neither
//! machine performs I/O: each transition returns a list of *effects* —
//! messages to send, records to force — that the guardian substrate executes
//! against its recovery system and network, then acknowledges back into the
//! machine. This keeps the protocol deterministic, directly unit-testable,
//! and lets the fault-injection harness crash a node between any two
//! effects, which is exactly the crash matrix of §2.2.3:
//!
//! * participant crash before the `prepared` record → the action is unknown
//!   there and will abort;
//! * participant crash after `prepared` → in doubt, must query;
//! * coordinator crash before `committing` → the action aborts;
//! * coordinator crash after `committing`, before `done` → phase two is
//!   restarted from the CT;
//! * coordinator crash after `done` → nothing to do.

mod coordinator;
mod msg;
mod participant;

pub use coordinator::{CoordEffect, CoordPhase, Coordinator};
pub use msg::{Envelope, Msg};
pub use participant::{PartEffect, PartPhase, Participant};
