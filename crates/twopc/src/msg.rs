//! Protocol messages.

use argus_objects::{ActionId, GuardianId};

/// A two-phase-commit message.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Msg {
    /// Coordinator → participant: "prepare for action A to commit".
    Prepare {
        /// The committing action.
        aid: ActionId,
    },
    /// Participant → coordinator: prepared successfully.
    PrepareOk {
        /// The action.
        aid: ActionId,
    },
    /// Participant → coordinator: the action is unknown or cannot prepare;
    /// the reply "aborted" of §2.2.2.
    PrepareRefused {
        /// The action.
        aid: ActionId,
    },
    /// Coordinator → participant: the verdict is commit.
    Commit {
        /// The action.
        aid: ActionId,
    },
    /// Participant → coordinator: commit record forced.
    CommitAck {
        /// The action.
        aid: ActionId,
    },
    /// Coordinator → participant: the verdict is abort.
    Abort {
        /// The action.
        aid: ActionId,
    },
    /// Participant → coordinator: abort record forced.
    AbortAck {
        /// The action.
        aid: ActionId,
    },
    /// Participant → coordinator: an in-doubt participant asking for the
    /// verdict after a crash (§2.2.2).
    QueryOutcome {
        /// The action.
        aid: ActionId,
    },
    /// Coordinator → participant: the answer to a query.
    Outcome {
        /// The action.
        aid: ActionId,
        /// `true` = committed, `false` = aborted.
        committed: bool,
    },
}

impl Msg {
    /// The action the message concerns.
    pub fn aid(&self) -> ActionId {
        match self {
            Msg::Prepare { aid }
            | Msg::PrepareOk { aid }
            | Msg::PrepareRefused { aid }
            | Msg::Commit { aid }
            | Msg::CommitAck { aid }
            | Msg::Abort { aid }
            | Msg::AbortAck { aid }
            | Msg::QueryOutcome { aid }
            | Msg::Outcome { aid, .. } => *aid,
        }
    }

    /// The message kind as a static name — the label the network tracer
    /// puts on the causal flow edge for this message.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Prepare { .. } => "Prepare",
            Msg::PrepareOk { .. } => "PrepareOk",
            Msg::PrepareRefused { .. } => "PrepareRefused",
            Msg::Commit { .. } => "Commit",
            Msg::CommitAck { .. } => "CommitAck",
            Msg::Abort { .. } => "Abort",
            Msg::AbortAck { .. } => "AbortAck",
            Msg::QueryOutcome { .. } => "QueryOutcome",
            Msg::Outcome { .. } => "Outcome",
        }
    }
}

/// A message in flight between two guardians.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Envelope {
    /// Sender.
    pub from: GuardianId,
    /// Receiver.
    pub to: GuardianId,
    /// Payload.
    pub msg: Msg,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aid_is_extracted_from_every_variant() {
        let aid = ActionId::new(GuardianId(1), 9);
        for msg in [
            Msg::Prepare { aid },
            Msg::PrepareOk { aid },
            Msg::PrepareRefused { aid },
            Msg::Commit { aid },
            Msg::CommitAck { aid },
            Msg::Abort { aid },
            Msg::AbortAck { aid },
            Msg::QueryOutcome { aid },
            Msg::Outcome {
                aid,
                committed: true,
            },
        ] {
            assert_eq!(msg.aid(), aid);
            assert!(!msg.kind().is_empty());
        }
    }

    #[test]
    fn kinds_are_distinct() {
        let aid = ActionId::new(GuardianId(0), 1);
        let kinds = [
            Msg::Prepare { aid }.kind(),
            Msg::PrepareOk { aid }.kind(),
            Msg::PrepareRefused { aid }.kind(),
            Msg::Commit { aid }.kind(),
            Msg::CommitAck { aid }.kind(),
            Msg::Abort { aid }.kind(),
            Msg::AbortAck { aid }.kind(),
            Msg::QueryOutcome { aid }.kind(),
            Msg::Outcome {
                aid,
                committed: false,
            }
            .kind(),
        ];
        let set: std::collections::HashSet<_> = kinds.iter().collect();
        assert_eq!(set.len(), kinds.len());
    }
}
