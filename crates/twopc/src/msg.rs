//! Protocol messages.

use argus_objects::{ActionId, GuardianId};

/// A two-phase-commit message.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Msg {
    /// Coordinator → participant: "prepare for action A to commit".
    Prepare {
        /// The committing action.
        aid: ActionId,
    },
    /// Participant → coordinator: prepared successfully.
    PrepareOk {
        /// The action.
        aid: ActionId,
    },
    /// Participant → coordinator: the action is unknown or cannot prepare;
    /// the reply "aborted" of §2.2.2.
    PrepareRefused {
        /// The action.
        aid: ActionId,
    },
    /// Coordinator → participant: the verdict is commit.
    Commit {
        /// The action.
        aid: ActionId,
    },
    /// Participant → coordinator: commit record forced.
    CommitAck {
        /// The action.
        aid: ActionId,
    },
    /// Coordinator → participant: the verdict is abort.
    Abort {
        /// The action.
        aid: ActionId,
    },
    /// Participant → coordinator: abort record forced.
    AbortAck {
        /// The action.
        aid: ActionId,
    },
    /// Participant → coordinator: an in-doubt participant asking for the
    /// verdict after a crash (§2.2.2).
    QueryOutcome {
        /// The action.
        aid: ActionId,
    },
    /// Coordinator → participant: the answer to a query.
    Outcome {
        /// The action.
        aid: ActionId,
        /// `true` = committed, `false` = aborted.
        committed: bool,
    },
}

impl Msg {
    /// The action the message concerns.
    pub fn aid(&self) -> ActionId {
        match self {
            Msg::Prepare { aid }
            | Msg::PrepareOk { aid }
            | Msg::PrepareRefused { aid }
            | Msg::Commit { aid }
            | Msg::CommitAck { aid }
            | Msg::Abort { aid }
            | Msg::AbortAck { aid }
            | Msg::QueryOutcome { aid }
            | Msg::Outcome { aid, .. } => *aid,
        }
    }
}

/// A message in flight between two guardians.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Envelope {
    /// Sender.
    pub from: GuardianId,
    /// Receiver.
    pub to: GuardianId,
    /// Payload.
    pub msg: Msg,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aid_is_extracted_from_every_variant() {
        let aid = ActionId::new(GuardianId(1), 9);
        for msg in [
            Msg::Prepare { aid },
            Msg::PrepareOk { aid },
            Msg::PrepareRefused { aid },
            Msg::Commit { aid },
            Msg::CommitAck { aid },
            Msg::Abort { aid },
            Msg::AbortAck { aid },
            Msg::QueryOutcome { aid },
            Msg::Outcome {
                aid,
                committed: true,
            },
        ] {
            assert_eq!(msg.aid(), aid);
        }
    }
}
