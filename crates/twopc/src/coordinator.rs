//! The coordinator state machine (§2.2.1).

use crate::Msg;
use argus_objects::{ActionId, GuardianId};
use argus_obs::Event;
use std::collections::BTreeSet;

/// The trace key for an action: origin guardian + sequence number.
pub(crate) fn tkey(aid: ActionId) -> argus_trace::Key {
    argus_trace::Key::new(aid.coordinator.0, aid.seq)
}

/// Where the coordinator stands in the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoordPhase {
    /// Prepare messages are out; waiting for votes.
    Preparing,
    /// Every participant voted prepared; the `committing` record is being /
    /// has been forced and commit messages are out.
    Committing,
    /// At least one refusal (or a unilateral abort); abort messages are out.
    Aborting,
    /// All participants acknowledged the commit; `done` forced.
    Done,
    /// All participants acknowledged the abort.
    Aborted,
}

/// An effect the guardian must execute on the coordinator's behalf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordEffect {
    /// Send a protocol message.
    Send {
        /// Destination guardian.
        to: GuardianId,
        /// The message.
        msg: Msg,
    },
    /// Force the `committing` record (the commit point, §2.2.1), then call
    /// [`Coordinator::committing_forced`].
    ForceCommitting,
    /// Force the `done` record, then call [`Coordinator::done_forced`].
    ForceDone,
    /// The protocol is over; the top-level action's fate is final.
    Finished {
        /// The verdict.
        committed: bool,
    },
}

/// The coordinator of one top-level action.
#[derive(Debug, Clone)]
pub struct Coordinator {
    /// The action being committed.
    pub aid: ActionId,
    /// Every guardian involved (participants; may include the coordinator's
    /// own guardian, which also acts as a participant).
    pub participants: Vec<GuardianId>,
    phase: CoordPhase,
    waiting: BTreeSet<GuardianId>,
}

impl Coordinator {
    /// Sorts and dedups a participant list. A guardian an action both read
    /// and wrote at must take part in the protocol exactly once: a
    /// duplicate entry would mean duplicate prepare/commit/abort sends
    /// every round (the `waiting` set would still settle, hiding the
    /// waste), so the constructors normalize deterministically rather than
    /// trusting every caller to.
    fn normalize(mut participants: Vec<GuardianId>) -> Vec<GuardianId> {
        participants.sort_unstable();
        participants.dedup();
        participants
    }

    /// Creates a coordinator about to run the preparing phase. The
    /// participant list is deduplicated and sorted: each guardian joins the
    /// protocol once, however many roles it played in the action.
    pub fn new(aid: ActionId, participants: Vec<GuardianId>) -> Self {
        argus_obs::current().inc("twopc.coord.started");
        let participants = Self::normalize(participants);
        let waiting = participants.iter().copied().collect();
        Self {
            aid,
            participants,
            phase: CoordPhase::Preparing,
            waiting,
        }
    }

    /// Resumes a coordinator from a recovered `committing` CT entry: phase
    /// two restarts by re-sending commit messages (§2.2.3). The recovered
    /// participant list is normalized like [`Coordinator::new`]'s.
    pub fn resume_committing(
        aid: ActionId,
        participants: Vec<GuardianId>,
    ) -> (Self, Vec<CoordEffect>) {
        argus_obs::current().inc("twopc.coord.resumed");
        let participants = Self::normalize(participants);
        let waiting: BTreeSet<GuardianId> = participants.iter().copied().collect();
        let coord = Self {
            aid,
            participants,
            phase: CoordPhase::Committing,
            waiting,
        };
        let effects = coord.commit_msgs();
        (coord, effects)
    }

    /// Current phase.
    pub fn phase(&self) -> CoordPhase {
        self.phase
    }

    /// The participants whose replies are still outstanding in the current
    /// phase (votes while preparing, acks while committing or aborting).
    pub fn awaiting(&self) -> Vec<GuardianId> {
        self.waiting.iter().copied().collect()
    }

    /// Starts the preparing phase: prepare messages to every participant.
    pub fn start(&self) -> Vec<CoordEffect> {
        let n = self.participants.len() as u64;
        argus_obs::current().event(Event::PrepareSent { participants: n });
        argus_trace::current().instant(
            "twopc",
            "prepare_sent",
            self.aid.coordinator.0,
            Some(tkey(self.aid)),
            &[("participants", n)],
        );
        self.participants
            .iter()
            .map(|&g| CoordEffect::Send {
                to: g,
                msg: Msg::Prepare { aid: self.aid },
            })
            .collect()
    }

    fn commit_msgs(&self) -> Vec<CoordEffect> {
        self.participants
            .iter()
            .map(|&g| CoordEffect::Send {
                to: g,
                msg: Msg::Commit { aid: self.aid },
            })
            .collect()
    }

    fn abort_msgs(&self) -> Vec<CoordEffect> {
        self.participants
            .iter()
            .map(|&g| CoordEffect::Send {
                to: g,
                msg: Msg::Abort { aid: self.aid },
            })
            .collect()
    }

    /// Feeds an incoming protocol message from `from`.
    pub fn on_msg(&mut self, from: GuardianId, msg: &Msg) -> Vec<CoordEffect> {
        match (msg, self.phase) {
            (Msg::PrepareOk { .. }, CoordPhase::Preparing) => {
                self.waiting.remove(&from);
                if self.waiting.is_empty() {
                    vec![CoordEffect::ForceCommitting]
                } else {
                    Vec::new()
                }
            }
            (Msg::PrepareRefused { .. }, CoordPhase::Preparing) => self.abort_unilaterally(),
            // A refusal after we already started aborting: ignore (it will
            // be told to abort anyway).
            (Msg::PrepareRefused { .. }, CoordPhase::Aborting) => Vec::new(),
            (Msg::CommitAck { .. }, CoordPhase::Committing) => {
                self.waiting.remove(&from);
                if self.waiting.is_empty() {
                    self.phase = CoordPhase::Done;
                    vec![CoordEffect::ForceDone]
                } else {
                    Vec::new()
                }
            }
            (Msg::AbortAck { .. }, CoordPhase::Aborting) => {
                self.waiting.remove(&from);
                if self.waiting.is_empty() {
                    self.phase = CoordPhase::Aborted;
                    vec![CoordEffect::Finished { committed: false }]
                } else {
                    Vec::new()
                }
            }
            // An in-doubt participant asking for the verdict while the vote
            // is still being collected: it crashed after preparing, so any
            // vote of its that is still in flight is stale. The presumed-
            // abort answer is "aborted" — and that answer is a promise, so
            // the coordinator must abort too. Answering "aborted" here and
            // later counting the stale vote toward a commit would let one
            // participant abort while the others commit.
            (Msg::QueryOutcome { .. }, CoordPhase::Preparing) => {
                let mut effects = self.abort_unilaterally();
                effects.push(CoordEffect::Send {
                    to: from,
                    msg: Msg::Outcome {
                        aid: self.aid,
                        committed: false,
                    },
                });
                effects
            }
            // An in-doubt participant asking for the verdict.
            (Msg::QueryOutcome { .. }, phase) => {
                let committed = matches!(phase, CoordPhase::Committing | CoordPhase::Done);
                vec![CoordEffect::Send {
                    to: from,
                    msg: Msg::Outcome {
                        aid: self.aid,
                        committed,
                    },
                }]
            }
            // Anything else is a stale duplicate.
            _ => Vec::new(),
        }
    }

    /// The guardian forced the `committing` record; the action is now
    /// committed and phase two begins.
    pub fn committing_forced(&mut self) -> Vec<CoordEffect> {
        let obs = argus_obs::current();
        obs.inc("twopc.coord.committed");
        obs.event(Event::OutcomeSent {
            committed: true,
            participants: self.participants.len() as u64,
        });
        argus_trace::current().instant(
            "twopc",
            "outcome_sent",
            self.aid.coordinator.0,
            Some(tkey(self.aid)),
            &[("committed", 1)],
        );
        self.phase = CoordPhase::Committing;
        self.waiting = self.participants.iter().copied().collect();
        self.commit_msgs()
    }

    /// The guardian forced the `done` record; two-phase commit is complete.
    pub fn done_forced(&mut self) -> Vec<CoordEffect> {
        argus_obs::current().inc("twopc.coord.done");
        vec![CoordEffect::Finished { committed: true }]
    }

    /// Aborts unilaterally — a refusal arrived, or the Argus system decided
    /// a participant is unreachable (§2.2.1).
    pub fn abort_unilaterally(&mut self) -> Vec<CoordEffect> {
        if matches!(self.phase, CoordPhase::Committing | CoordPhase::Done) {
            // Past the commit point: aborting is no longer possible.
            return Vec::new();
        }
        let obs = argus_obs::current();
        obs.inc("twopc.coord.aborted");
        obs.event(Event::OutcomeSent {
            committed: false,
            participants: self.participants.len() as u64,
        });
        argus_trace::current().instant(
            "twopc",
            "outcome_sent",
            self.aid.coordinator.0,
            Some(tkey(self.aid)),
            &[("committed", 0)],
        );
        self.phase = CoordPhase::Aborting;
        self.waiting = self.participants.iter().copied().collect();
        self.abort_msgs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gid(n: u32) -> GuardianId {
        GuardianId(n)
    }

    fn aid() -> ActionId {
        ActionId::new(gid(0), 1)
    }

    fn commit_sends(effects: &[CoordEffect]) -> usize {
        effects
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    CoordEffect::Send {
                        msg: Msg::Commit { .. },
                        ..
                    }
                )
            })
            .count()
    }

    #[test]
    fn happy_path_commits() {
        let mut c = Coordinator::new(aid(), vec![gid(0), gid(1)]);
        assert_eq!(c.start().len(), 2);
        assert!(c.on_msg(gid(0), &Msg::PrepareOk { aid: aid() }).is_empty());
        let effects = c.on_msg(gid(1), &Msg::PrepareOk { aid: aid() });
        assert_eq!(effects, vec![CoordEffect::ForceCommitting]);
        let effects = c.committing_forced();
        assert_eq!(commit_sends(&effects), 2);
        assert!(c.on_msg(gid(1), &Msg::CommitAck { aid: aid() }).is_empty());
        let effects = c.on_msg(gid(0), &Msg::CommitAck { aid: aid() });
        assert_eq!(effects, vec![CoordEffect::ForceDone]);
        assert_eq!(
            c.done_forced(),
            vec![CoordEffect::Finished { committed: true }]
        );
        assert_eq!(c.phase(), CoordPhase::Done);
    }

    #[test]
    fn refusal_aborts_everyone() {
        let mut c = Coordinator::new(aid(), vec![gid(0), gid(1)]);
        c.start();
        let effects = c.on_msg(gid(0), &Msg::PrepareRefused { aid: aid() });
        assert_eq!(effects.len(), 2);
        assert!(effects.iter().all(|e| matches!(
            e,
            CoordEffect::Send {
                msg: Msg::Abort { .. },
                ..
            }
        )));
        c.on_msg(gid(0), &Msg::AbortAck { aid: aid() });
        let effects = c.on_msg(gid(1), &Msg::AbortAck { aid: aid() });
        assert_eq!(effects, vec![CoordEffect::Finished { committed: false }]);
        assert_eq!(c.phase(), CoordPhase::Aborted);
    }

    #[test]
    fn duplicate_votes_are_harmless() {
        let mut c = Coordinator::new(aid(), vec![gid(0), gid(1)]);
        c.start();
        c.on_msg(gid(0), &Msg::PrepareOk { aid: aid() });
        assert!(c.on_msg(gid(0), &Msg::PrepareOk { aid: aid() }).is_empty());
        let effects = c.on_msg(gid(1), &Msg::PrepareOk { aid: aid() });
        assert_eq!(effects, vec![CoordEffect::ForceCommitting]);
    }

    #[test]
    fn duplicate_participants_are_deduped() {
        // A read+write-same-guardian action hands the constructor the same
        // id twice; the protocol must run it as one participant — exactly
        // one prepare out, one vote back tips the commit.
        let mut c = Coordinator::new(aid(), vec![gid(1), gid(0), gid(1)]);
        assert_eq!(c.participants, vec![gid(0), gid(1)]);
        assert_eq!(c.start().len(), 2);
        c.on_msg(gid(0), &Msg::PrepareOk { aid: aid() });
        let effects = c.on_msg(gid(1), &Msg::PrepareOk { aid: aid() });
        assert_eq!(effects, vec![CoordEffect::ForceCommitting]);
        assert_eq!(commit_sends(&c.committing_forced()), 2);

        let (c, effects) = Coordinator::resume_committing(aid(), vec![gid(2), gid(2), gid(0)]);
        assert_eq!(c.participants, vec![gid(0), gid(2)]);
        assert_eq!(commit_sends(&effects), 2);
    }

    #[test]
    fn no_abort_after_commit_point() {
        let mut c = Coordinator::new(aid(), vec![gid(0)]);
        c.start();
        c.on_msg(gid(0), &Msg::PrepareOk { aid: aid() });
        c.committing_forced();
        assert!(c.abort_unilaterally().is_empty());
        assert_eq!(c.phase(), CoordPhase::Committing);
    }

    #[test]
    fn resume_committing_resends_commits() {
        let (c, effects) = Coordinator::resume_committing(aid(), vec![gid(0), gid(1)]);
        assert_eq!(c.phase(), CoordPhase::Committing);
        assert_eq!(commit_sends(&effects), 2);
    }

    #[test]
    fn queries_get_the_right_verdict() {
        let mut c = Coordinator::new(aid(), vec![gid(0)]);
        c.start();
        c.on_msg(gid(0), &Msg::PrepareOk { aid: aid() });
        c.committing_forced();
        let effects = c.on_msg(gid(0), &Msg::QueryOutcome { aid: aid() });
        assert_eq!(
            effects,
            vec![CoordEffect::Send {
                to: gid(0),
                msg: Msg::Outcome {
                    aid: aid(),
                    committed: true
                }
            }]
        );
    }

    #[test]
    fn query_while_preparing_aborts_the_action() {
        // An in-doubt query during the voting phase means the participant
        // crashed after preparing; any in-flight vote of its is stale.
        // Answering "aborted" is a promise, so the coordinator must abort —
        // otherwise the stale vote could later tip it into committing while
        // the queried participant aborts.
        let mut c = Coordinator::new(aid(), vec![gid(0), gid(1)]);
        c.start();
        c.on_msg(gid(1), &Msg::PrepareOk { aid: aid() });
        let effects = c.on_msg(gid(0), &Msg::QueryOutcome { aid: aid() });
        assert_eq!(c.phase(), CoordPhase::Aborting);
        // Abort to both participants, then the promised answer.
        assert_eq!(effects.len(), 3);
        assert_eq!(
            effects[2],
            CoordEffect::Send {
                to: gid(0),
                msg: Msg::Outcome {
                    aid: aid(),
                    committed: false
                }
            }
        );
        // The stale vote arriving afterwards must not resurrect the commit.
        assert!(c.on_msg(gid(0), &Msg::PrepareOk { aid: aid() }).is_empty());
        assert_eq!(c.phase(), CoordPhase::Aborting);
    }
}
