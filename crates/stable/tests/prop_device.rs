//! Device-level property tests: the byte-extent view and the mirrored disk
//! against reference models.
//!
//! Driven by the in-tree deterministic RNG (`argus_sim::DetRng`) with fixed
//! seeds, so every "random" case is exactly reproducible and no external
//! property-testing crate is needed.

use argus_sim::{CostModel, DetRng, SimClock};
use argus_stable::{ByteDevice, FaultPlan, MemStore, MirroredDisk, Page, PageStore, PAGE_SIZE};

fn bytes(rng: &mut DetRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect()
}

/// Any sequence of overlapping byte-extent writes reads back exactly like a
/// flat byte-array model.
#[test]
fn byte_device_matches_flat_memory() {
    let mut rng = DetRng::new(0xB17E);
    for case in 0..32 {
        let extents: Vec<(u64, Vec<u8>)> = (0..rng.gen_between(1, 20))
            .map(|_| {
                let offset = rng.gen_range(8192);
                let len = rng.gen_between(1, 1500) as usize;
                let data = bytes(&mut rng, len);
                (offset, data)
            })
            .collect();

        let mut dev = ByteDevice::new(MemStore::new(SimClock::new(), CostModel::fast()));
        let mut model = vec![0u8; 16 * 1024];
        for (offset, data) in &extents {
            dev.write_at(*offset, data).unwrap();
            let end = *offset as usize + data.len();
            model[*offset as usize..end].copy_from_slice(data);
        }
        // Read back in arbitrary-aligned chunks.
        for (offset, data) in &extents {
            let mut buf = vec![0u8; data.len() + 7];
            let start = offset.saturating_sub(3);
            dev.read_at(start, &mut buf).unwrap();
            assert_eq!(
                &buf[..],
                &model[start as usize..start as usize + buf.len()],
                "case {case}"
            );
        }
    }
}

/// The mirrored disk behaves exactly like a plain page array under any
/// interleaving of writes and single-copy decay (reads repair).
#[test]
fn mirror_matches_model_under_decay() {
    let mut rng = DetRng::new(0xD15C);
    for case in 0..32 {
        let steps = rng.gen_between(1, 120);
        let mut disk = MirroredDisk::new(FaultPlan::new(), SimClock::new(), CostModel::fast());
        let mut model: Vec<Option<u8>> = vec![None; 32];
        for _ in 0..steps {
            let pno = rng.gen_range(32);
            match rng.gen_range(4) {
                0 | 1 => {
                    let fill = (rng.next_u64() & 0xFF) as u8;
                    disk.write_page(pno, &Page::from_bytes(&[fill])).unwrap();
                    model[pno as usize] = Some(fill);
                }
                2 => disk.decay_a(pno),
                _ => disk.decay_b(pno),
            }
            // Decaying one copy must never change what a read returns. Only
            // check pages the model knows (unwritten pages may not exist).
            if let Some(fill) = model[pno as usize] {
                let got = disk.read_page(pno).unwrap();
                assert_eq!(got.as_slice()[0], fill, "case {case}");
            }
        }
        // Full audit at the end.
        for (pno, expect) in model.iter().enumerate() {
            if let Some(fill) = expect {
                let got = disk.read_page(pno as u64).unwrap();
                assert_eq!(got.as_slice()[0], *fill, "case {case}");
            }
        }
    }
}

/// Torn writes are atomic at page granularity: after a crash mid-write, the
/// page reads as either the old or the new value.
#[test]
fn torn_writes_leave_old_or_new() {
    for crash_at in 0u64..2 {
        let plan = FaultPlan::new();
        let mut disk = MirroredDisk::new(plan.clone(), SimClock::new(), CostModel::fast());
        disk.write_page(0, &Page::from_bytes(b"old")).unwrap();
        plan.arm_after_writes(crash_at);
        let _ = disk.write_page(0, &Page::from_bytes(b"new"));
        plan.heal();
        plan.disarm();
        let got = disk.read_page(0).unwrap();
        assert!(
            got == Page::from_bytes(b"old") || got == Page::from_bytes(b"new"),
            "crash_at {crash_at}: page is neither old nor new"
        );
    }
}

/// Page zero-fill contract: reading any page beyond the written area
/// returns zeros on every store type.
#[test]
fn reads_past_end_are_zero() {
    let mut rng = DetRng::new(0x2E80);
    for _ in 0..16 {
        let pno = rng.gen_range(100);
        let mut mem = MemStore::new(SimClock::new(), CostModel::fast());
        assert_eq!(mem.read_page(pno).unwrap(), Page::zeroed());
        let mut mirror = MirroredDisk::new(FaultPlan::new(), SimClock::new(), CostModel::fast());
        assert_eq!(mirror.read_page(pno).unwrap(), Page::zeroed());
    }
}

/// Page payloads of every size up to PAGE_SIZE roundtrip.
#[test]
fn page_from_bytes_roundtrips() {
    let mut rng = DetRng::new(0x90FB);
    let mut sizes: Vec<usize> = vec![0, 1, PAGE_SIZE - 1, PAGE_SIZE];
    sizes.extend((0..16).map(|_| rng.gen_range(PAGE_SIZE as u64 + 1) as usize));
    for len in sizes {
        let data = bytes(&mut rng, len);
        let page = Page::from_bytes(&data);
        assert_eq!(&page.as_slice()[..data.len()], &data[..], "len {len}");
        assert!(
            page.as_slice()[data.len()..].iter().all(|&b| b == 0),
            "len {len}"
        );
    }
}
