//! Device-level property tests: the byte-extent view and the mirrored disk
//! against reference models.

use argus_sim::{CostModel, DetRng, SimClock};
use argus_stable::{ByteDevice, FaultPlan, MemStore, MirroredDisk, Page, PageStore, PAGE_SIZE};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Extent {
    offset: u64,
    data: Vec<u8>,
}

fn extent_strategy() -> impl Strategy<Value = Extent> {
    (0u64..8192, proptest::collection::vec(any::<u8>(), 1..1500))
        .prop_map(|(offset, data)| Extent { offset, data })
}

proptest! {
    /// Any sequence of overlapping byte-extent writes reads back exactly
    /// like a flat byte-array model.
    #[test]
    fn byte_device_matches_flat_memory(extents in proptest::collection::vec(extent_strategy(), 1..20)) {
        let mut dev = ByteDevice::new(MemStore::new(SimClock::new(), CostModel::fast()));
        let mut model = vec![0u8; 16 * 1024];
        for e in &extents {
            dev.write_at(e.offset, &e.data).unwrap();
            let end = e.offset as usize + e.data.len();
            model[e.offset as usize..end].copy_from_slice(&e.data);
        }
        // Read back in arbitrary-aligned chunks.
        for e in &extents {
            let mut buf = vec![0u8; e.data.len() + 7];
            let start = e.offset.saturating_sub(3);
            dev.read_at(start, &mut buf).unwrap();
            prop_assert_eq!(&buf[..], &model[start as usize..start as usize + buf.len()]);
        }
    }

    /// The mirrored disk behaves exactly like a plain page array under any
    /// interleaving of writes and single-copy decay (reads repair).
    #[test]
    fn mirror_matches_model_under_decay(
        seed in any::<u64>(),
        steps in 1usize..120,
    ) {
        let mut rng = DetRng::new(seed);
        let mut disk = MirroredDisk::new(FaultPlan::new(), SimClock::new(), CostModel::fast());
        let mut model: Vec<Option<u8>> = vec![None; 32];
        for _ in 0..steps {
            let pno = rng.gen_range(32);
            match rng.gen_range(4) {
                0 | 1 => {
                    let fill = (rng.next_u64() & 0xFF) as u8;
                    disk.write_page(pno, &Page::from_bytes(&[fill])).unwrap();
                    model[pno as usize] = Some(fill);
                }
                2 => disk.decay_a(pno),
                _ => disk.decay_b(pno),
            }
            // Decaying one copy must never change what a read returns. Only
            // check pages the model knows (unwritten pages may not exist).
            if let Some(fill) = model[pno as usize] {
                let got = disk.read_page(pno).unwrap();
                prop_assert_eq!(got.as_slice()[0], fill);
            }
        }
        // Full audit at the end.
        for (pno, expect) in model.iter().enumerate() {
            if let Some(fill) = expect {
                let got = disk.read_page(pno as u64).unwrap();
                prop_assert_eq!(got.as_slice()[0], *fill);
            }
        }
    }

    /// Torn writes are atomic at page granularity: after a crash mid-write,
    /// the page reads as either the old or the new value.
    #[test]
    fn torn_writes_leave_old_or_new(crash_at in 0u64..2) {
        let plan = FaultPlan::new();
        let mut disk =
            MirroredDisk::new(plan.clone(), SimClock::new(), CostModel::fast());
        disk.write_page(0, &Page::from_bytes(b"old")).unwrap();
        plan.arm_after_writes(crash_at);
        let _ = disk.write_page(0, &Page::from_bytes(b"new"));
        plan.heal();
        plan.disarm();
        let got = disk.read_page(0).unwrap();
        prop_assert!(
            got == Page::from_bytes(b"old") || got == Page::from_bytes(b"new"),
            "page is neither old nor new"
        );
    }

    /// Page zero-fill contract: reading any page beyond the written area
    /// returns zeros on every store type.
    #[test]
    fn reads_past_end_are_zero(pno in 0u64..100) {
        let mut mem = MemStore::new(SimClock::new(), CostModel::fast());
        prop_assert_eq!(mem.read_page(pno).unwrap(), Page::zeroed());
        let mut mirror = MirroredDisk::new(FaultPlan::new(), SimClock::new(), CostModel::fast());
        prop_assert_eq!(mirror.read_page(pno).unwrap(), Page::zeroed());
    }

    /// Page payloads of every size up to PAGE_SIZE roundtrip.
    #[test]
    fn page_from_bytes_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..PAGE_SIZE)) {
        let page = Page::from_bytes(&data);
        prop_assert_eq!(&page.as_slice()[..data.len()], &data[..]);
        prop_assert!(page.as_slice()[data.len()..].iter().all(|&b| b == 0));
    }
}
