//! Cache-transparency property tests: a [`PageCache`] over a page store is
//! byte-identical to the bare store under randomized interleavings of
//! writes, reads, syncs, and crashes.
//!
//! Driven by the in-tree deterministic RNG (`argus_sim::DetRng`) with fixed
//! seeds, so every "random" case is exactly reproducible and no external
//! property-testing crate is needed.

use argus_sim::{CostModel, DetRng, SimClock};
use argus_stable::{CacheConfig, FaultPlan, MemStore, Page, PageCache, PageStore};

const PAGES: u64 = 24;

fn fill(rng: &mut DetRng) -> Page {
    let mut body = [0u8; 64];
    for b in body.iter_mut() {
        *b = (rng.next_u64() & 0xFF) as u8;
    }
    Page::from_bytes(&body)
}

/// Random write/read/sync/crash interleavings: every read through the cache
/// returns exactly what the bare store returns, and after each simulated
/// restart (cache invalidated, fault plan healed) the full page images
/// still agree.
#[test]
fn cached_reads_match_uncached_under_random_interleavings() {
    for seed in 0..24u64 {
        let mut rng = DetRng::new(0xCAC4E + seed);
        // The same fault plan arming drives both stores: the cache is
        // write-through, so both inner stores see the identical write
        // sequence and crash at the identical step.
        let plan_ref = FaultPlan::new();
        let plan_cached = FaultPlan::new();
        let mut reference =
            MemStore::with_fault_plan(plan_ref.clone(), SimClock::new(), CostModel::fast());
        let mut cached = PageCache::new(
            MemStore::with_fault_plan(plan_cached.clone(), SimClock::new(), CostModel::fast()),
            CacheConfig {
                capacity: 8,
                readahead: 4,
            },
        );

        for _ in 0..rng.gen_between(20, 120) {
            match rng.gen_range(10) {
                // Writes dominate so eviction and write-through churn.
                0..=3 => {
                    let pno = rng.gen_range(PAGES);
                    let page = fill(&mut rng);
                    let a = reference.write_page(pno, &page);
                    let b = cached.write_page(pno, &page);
                    assert_eq!(a.is_ok(), b.is_ok(), "seed {seed}: write disagreement");
                }
                4..=7 => {
                    // While the node is down every device read fails but a
                    // cache hit still serves — a distinction without meaning
                    // (a crashed node runs no reads), so only compare when
                    // the device is up.
                    if plan_ref.is_crashed() {
                        continue;
                    }
                    let pno = rng.gen_range(PAGES);
                    match (reference.read_page(pno), cached.read_page(pno)) {
                        (Ok(a), Ok(b)) => {
                            assert_eq!(a, b, "seed {seed}: page {pno} diverged")
                        }
                        (a, b) => {
                            assert_eq!(a.is_ok(), b.is_ok(), "seed {seed}: read disagreement")
                        }
                    }
                }
                8 => {
                    let a = reference.sync();
                    let b = cached.sync();
                    assert_eq!(a.is_ok(), b.is_ok(), "seed {seed}: sync disagreement");
                }
                _ => {
                    if rng.gen_bool(0.5) && !plan_ref.is_crashed() {
                        // Arm a crash a few writes out on both stores.
                        let after = rng.gen_range(6);
                        plan_ref.arm_after_writes(after);
                        plan_cached.arm_after_writes(after);
                    } else {
                        // Simulated restart: the device survives, the cache
                        // does not.
                        plan_ref.heal();
                        plan_cached.heal();
                        reference.invalidate_volatile();
                        cached.invalidate_volatile();
                    }
                }
            }
        }

        // Final restart, then the full images must agree byte for byte.
        plan_ref.heal();
        plan_cached.heal();
        reference.invalidate_volatile();
        cached.invalidate_volatile();
        for pno in 0..PAGES {
            let a = reference.read_page(pno).expect("reference read");
            let b = cached.read_page(pno).expect("cached read");
            assert_eq!(a, b, "seed {seed}: final image diverged at page {pno}");
        }
    }
}

/// Sequential scans (the recovery access pattern, both directions) through
/// a cache with read-ahead return the same bytes as the bare store.
#[test]
fn scans_with_readahead_match_uncached() {
    let mut rng = DetRng::new(0x5CA7);
    let mut reference = MemStore::new(SimClock::new(), CostModel::fast());
    let mut cached = PageCache::new(
        MemStore::new(SimClock::new(), CostModel::fast()),
        CacheConfig {
            capacity: 6,
            readahead: 3,
        },
    );
    for pno in 0..PAGES {
        let page = fill(&mut rng);
        reference.write_page(pno, &page).unwrap();
        cached.write_page(pno, &page).unwrap();
    }
    cached.invalidate_volatile();
    for pno in 0..PAGES {
        assert_eq!(
            reference.read_page(pno).unwrap(),
            cached.read_page(pno).unwrap(),
            "forward scan diverged at {pno}"
        );
    }
    cached.invalidate_volatile();
    for pno in (0..PAGES).rev() {
        assert_eq!(
            reference.read_page(pno).unwrap(),
            cached.read_page(pno).unwrap(),
            "backward scan diverged at {pno}"
        );
    }
}
