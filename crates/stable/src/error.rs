//! Storage-layer errors.

use std::fmt;
use std::io;

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors surfaced by the storage stack.
#[derive(Debug)]
pub enum StorageError {
    /// The fault plan fired: the simulated node has crashed. All volatile
    /// state must be discarded and recovery run against the surviving media.
    Crashed,
    /// Both copies of a mirrored page were unreadable — stable storage
    /// itself has failed. The thesis treats this as a catastrophe whose
    /// probability the mirroring makes negligible; the simulator surfaces it
    /// so tests can prove single-copy decay never causes it.
    BothCopiesBad { page: u64 },
    /// A raw (unmirrored) page was unreadable.
    BadPage { page: u64 },
    /// Access beyond the end of the device.
    OutOfRange { page: u64, len: u64 },
    /// An underlying real-file I/O error (file-backed store only).
    Io(io::Error),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Crashed => write!(f, "simulated node crash"),
            StorageError::BothCopiesBad { page } => {
                write!(f, "both mirrored copies of page {page} are bad")
            }
            StorageError::BadPage { page } => write!(f, "page {page} is unreadable"),
            StorageError::OutOfRange { page, len } => {
                write!(f, "page {page} out of range (device has {len} pages)")
            }
            StorageError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl StorageError {
    /// Returns `true` when the error is the simulated node crash, which the
    /// harness treats as "stop, drop volatile state, recover".
    pub fn is_crash(&self) -> bool {
        matches!(self, StorageError::Crashed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::BothCopiesBad { page: 7 };
        assert!(e.to_string().contains("page 7"));
        assert!(StorageError::Crashed.is_crash());
        assert!(!e.is_crash());
    }

    #[test]
    fn io_error_converts() {
        let e: StorageError = io::Error::other("boom").into();
        assert!(matches!(e, StorageError::Io(_)));
    }
}
