//! The fallible raw disk underneath a mirror.

use crate::{FaultPlan, Page, PageNo, StorageError, StorageResult};

/// The simulated condition of one raw page.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RawPage {
    /// Readable contents.
    Good(Page),
    /// Unreadable: decayed spontaneously or torn by a crash mid-write.
    Bad,
}

/// One half of a Lampson–Sturgis mirrored pair.
///
/// A raw disk is *not* atomic: a crash during [`RawDisk::write`] leaves the
/// page unreadable (torn), and any page may be marked decayed by the test
/// harness. [`crate::MirroredDisk`] builds the atomic abstraction on top.
#[derive(Debug, Clone)]
pub struct RawDisk {
    pages: Vec<RawPage>,
}

impl RawDisk {
    /// Creates an empty raw disk.
    pub fn new() -> Self {
        Self { pages: Vec::new() }
    }

    /// Grows the disk to hold at least `len` pages (zero-filled).
    pub fn ensure_len(&mut self, len: u64) {
        while (self.pages.len() as u64) < len {
            self.pages.push(RawPage::Good(Page::zeroed()));
        }
    }

    /// Number of pages on the disk.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Reads a page, failing if it has decayed or was torn.
    pub fn read(&self, pno: PageNo) -> StorageResult<Page> {
        match self.pages.get(pno as usize) {
            Some(RawPage::Good(p)) => Ok(p.clone()),
            Some(RawPage::Bad) => Err(StorageError::BadPage { page: pno }),
            None => Err(StorageError::OutOfRange {
                page: pno,
                len: self.page_count(),
            }),
        }
    }

    /// Writes a page. Consults `plan` first: if the crash fires on this
    /// write the page is torn (left unreadable) and the error propagates —
    /// precisely the failure the mirrored pair exists to mask.
    pub fn write(&mut self, pno: PageNo, page: &Page, plan: &FaultPlan) -> StorageResult<()> {
        self.ensure_len(pno + 1);
        if let Err(e) = plan.note_write_at(pno) {
            self.pages[pno as usize] = RawPage::Bad;
            return Err(e);
        }
        self.pages[pno as usize] = RawPage::Good(page.clone());
        Ok(())
    }

    /// Repairs a page from known-good contents (used by the mirror after
    /// reading the twin). A repair is a real device write, so it consults the
    /// plan like any other: a crash mid-repair tears the page being repaired
    /// — the twin the contents came from is still good, so the pair never
    /// loses both copies to one crash.
    pub fn repair(&mut self, pno: PageNo, page: &Page, plan: &FaultPlan) -> StorageResult<()> {
        self.write(pno, page, plan)
    }

    /// Marks a page decayed — the spontaneous media failure of §1.1.
    pub fn decay(&mut self, pno: PageNo) {
        self.ensure_len(pno + 1);
        self.pages[pno as usize] = RawPage::Bad;
    }

    /// Returns whether the page is currently readable.
    pub fn is_good(&self, pno: PageNo) -> bool {
        matches!(self.pages.get(pno as usize), Some(RawPage::Good(_)))
    }
}

impl Default for RawDisk {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let mut d = RawDisk::new();
        let plan = FaultPlan::new();
        let p = Page::from_bytes(b"payload");
        d.write(3, &p, &plan).unwrap();
        assert_eq!(d.read(3).unwrap(), p);
        // Pages below the write exist and read as zero.
        assert_eq!(d.read(0).unwrap(), Page::zeroed());
    }

    #[test]
    fn read_past_end_fails() {
        let d = RawDisk::new();
        assert!(matches!(d.read(0), Err(StorageError::OutOfRange { .. })));
    }

    #[test]
    fn decayed_page_is_unreadable_until_repaired() {
        let mut d = RawDisk::new();
        let plan = FaultPlan::new();
        let p = Page::from_bytes(b"x");
        d.write(0, &p, &plan).unwrap();
        d.decay(0);
        assert!(matches!(d.read(0), Err(StorageError::BadPage { .. })));
        d.repair(0, &p, &plan).unwrap();
        assert_eq!(d.read(0).unwrap(), p);
    }

    #[test]
    fn crash_mid_repair_tears_the_page_being_repaired() {
        let mut d = RawDisk::new();
        let plan = FaultPlan::new();
        let p = Page::from_bytes(b"twin copy");
        d.write(0, &p, &plan).unwrap();
        d.decay(0);
        plan.arm_after_writes(0);
        assert!(d.repair(0, &p, &plan).unwrap_err().is_crash());
        assert!(!d.is_good(0));
        plan.heal();
        d.repair(0, &p, &plan).unwrap();
        assert_eq!(d.read(0).unwrap(), p);
    }

    #[test]
    fn crash_mid_write_tears_the_page() {
        let mut d = RawDisk::new();
        let plan = FaultPlan::new();
        d.write(0, &Page::from_bytes(b"old"), &plan).unwrap();
        plan.arm_after_writes(0);
        let err = d.write(0, &Page::from_bytes(b"new"), &plan).unwrap_err();
        assert!(err.is_crash());
        // The old value is gone AND the new one never landed: torn.
        assert!(!d.is_good(0));
    }
}
