//! The page-store interface.

use crate::{Page, PageNo, StorageResult};
use argus_sim::DeviceStats;

/// A device of fixed-size pages with atomic single-page writes.
///
/// This is the contract the thesis assumes of stable storage (§1.1): a write
/// either happens completely or not at all, even across a crash. The mirrored
/// implementation ([`crate::MirroredDisk`]) provides it over fallible media;
/// [`crate::MemStore`] and [`crate::FileStore`] provide it trivially.
///
/// Writing past the current end grows the device with zero pages.
pub trait PageStore {
    /// Reads the page at `pno`.
    fn read_page(&mut self, pno: PageNo) -> StorageResult<Page>;

    /// Atomically replaces the page at `pno`.
    fn write_page(&mut self, pno: PageNo, page: &Page) -> StorageResult<()>;

    /// Number of pages currently on the device.
    fn page_count(&self) -> u64;

    /// Write barrier: when this returns, every prior write is durable.
    fn sync(&mut self) -> StorageResult<()>;

    /// The device's I/O counters.
    fn stats(&self) -> DeviceStats;

    /// Drops any volatile state (e.g. caches) layered over the durable
    /// media. Called on simulated restart so nothing a crash would have
    /// erased survives into recovery; plain media stores have none.
    fn invalidate_volatile(&mut self) {}

    /// Fault-injection hook: spontaneously decays one media copy of `pno`
    /// (the §1.1 media failure), returning `true` if the store models decay.
    /// Stores with redundant media ([`crate::MirroredDisk`]) lose one leg and
    /// must repair it from the twin on the next read; always-good stores
    /// return `false` and the harness knows decay is not being exercised.
    fn decay_page(&mut self, _pno: PageNo) -> bool {
        false
    }
}

/// Classifies an access as sequential or random relative to the previous one.
///
/// Shared by the store implementations for cost accounting: an access to the
/// same or the following page after the last access of the same kind is
/// sequential, anything else pays a seek.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SeqTracker {
    last: Option<PageNo>,
}

impl SeqTracker {
    /// Records an access to `pno` and reports whether it was sequential.
    pub(crate) fn classify(&mut self, pno: PageNo) -> bool {
        let sequential = match self.last {
            Some(prev) => pno == prev || pno == prev + 1,
            None => true,
        };
        self.last = Some(pno);
        sequential
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_sequential() {
        let mut t = SeqTracker::default();
        assert!(t.classify(10));
    }

    #[test]
    fn forward_step_is_sequential() {
        let mut t = SeqTracker::default();
        t.classify(5);
        assert!(t.classify(6));
        assert!(t.classify(6));
        assert!(t.classify(7));
    }

    #[test]
    fn jumps_are_random() {
        let mut t = SeqTracker::default();
        t.classify(5);
        assert!(!t.classify(9));
        assert!(!t.classify(4));
    }
}
