//! A transparent LRU page cache with sequential read-ahead.
//!
//! The thesis charges recovery for every page it touches, and the backward
//! chain walk touches pages newest-to-oldest — the worst case for a device
//! that only rewards forward scans. [`PageCache`] sits between a consumer
//! (the stable log's [`crate::ByteDevice`]) and any [`PageStore`]
//! (`MemStore`, `MirroredDisk`, `FileStore`) and
//!
//! * serves repeated reads from an LRU map without touching the device,
//! * detects sequential runs in **either direction** and prefetches the next
//!   window with ascending (sequential-rate) device reads, and
//! * stays write-through, so the cache never diverges from the media and the
//!   layers below keep their crash/decay semantics unchanged.
//!
//! The cache is volatile: [`PageStore::invalidate_volatile`] empties it, and
//! the stable log calls that on reopen, so a simulated crash never leaks
//! cached pages into recovery.

use crate::{Page, PageNo, PageStore, StorageResult};
use argus_sim::DeviceStats;
use std::collections::HashMap;

/// Tuning knobs for a [`PageCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of cached pages. `0` disables the cache entirely —
    /// every call passes straight through to the inner store.
    pub capacity: usize,
    /// Number of pages to prefetch past a miss that continues a sequential
    /// run (in the run's direction). `0` disables read-ahead.
    pub readahead: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 128,
            readahead: 8,
        }
    }
}

impl CacheConfig {
    /// A configuration that turns the layer into a pure passthrough.
    pub fn disabled() -> Self {
        Self {
            capacity: 0,
            readahead: 0,
        }
    }

    /// Whether the cache holds pages at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }
}

/// Cached metric handles for one page cache.
#[derive(Debug, Clone)]
struct CacheObs {
    hits: argus_obs::Counter,
    misses: argus_obs::Counter,
    readahead: argus_obs::Counter,
}

impl CacheObs {
    fn resolve() -> Self {
        let reg = argus_obs::current();
        Self {
            hits: reg.counter("stable.cache.hit"),
            misses: reg.counter("stable.cache.miss"),
            readahead: reg.counter("stable.cache.readahead"),
        }
    }
}

#[derive(Debug)]
struct Slot {
    stamp: u64,
    page: Page,
}

/// An LRU page cache with bidirectional sequential read-ahead over any
/// [`PageStore`]. See the module docs for the contract.
#[derive(Debug)]
pub struct PageCache<S> {
    inner: S,
    cfg: CacheConfig,
    slots: HashMap<PageNo, Slot>,
    /// Logical access clock for LRU stamps.
    tick: u64,
    /// The previous read that went to the device; two nearby misses in the
    /// same direction mean a sequential run worth prefetching.
    last_miss: Option<PageNo>,
    obs: CacheObs,
}

impl<S: PageStore> PageCache<S> {
    /// Wraps `inner` with a cache configured by `cfg`.
    pub fn new(inner: S, cfg: CacheConfig) -> Self {
        Self {
            inner,
            cfg,
            slots: HashMap::new(),
            tick: 0,
            last_miss: None,
            obs: CacheObs::resolve(),
        }
    }

    /// The inner store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The inner store, mutably. The cache stays coherent because it is
    /// write-through, but callers that bypass it for writes must
    /// [`PageStore::invalidate_volatile`] afterwards.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps the cache, returning the inner store.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The active configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    fn insert(&mut self, pno: PageNo, page: Page) {
        if self.slots.len() >= self.cfg.capacity && !self.slots.contains_key(&pno) {
            if let Some(victim) = self
                .slots
                .iter()
                .min_by_key(|(_, slot)| slot.stamp)
                .map(|(&victim, _)| victim)
            {
                self.slots.remove(&victim);
            }
        }
        let stamp = self.tick;
        self.slots.insert(pno, Slot { stamp, page });
    }

    /// If the miss at `pno` continues a run (the gap to the previous miss is
    /// within the read-ahead window in either direction — prefetching itself
    /// makes consecutive demand misses land `readahead + 1` apart), reads the
    /// next window into the cache. The window is always read in ascending
    /// page order so the device charges it at the sequential rate, even when
    /// the consumer (recovery's backward chain walk) is moving down.
    fn maybe_readahead(&mut self, pno: PageNo) {
        let k = self.cfg.readahead as u64;
        let Some(prev) = self.last_miss else { return };
        if k == 0 {
            return;
        }
        let limit = self.inner.page_count();
        let (start, end) = if pno > prev && pno - prev <= k + 1 {
            // Ascending run: prefetch the pages just above.
            (pno + 1, (pno + 1 + k).min(limit))
        } else if pno < prev && prev - pno <= k + 1 {
            // Descending run (the backward chain walk): prefetch just below.
            (pno.saturating_sub(k), pno)
        } else {
            return;
        };
        let tracer = argus_trace::current();
        let t0 = tracer.device_detail().then(|| tracer.now());
        let mut fetched = 0u64;
        for p in start..end {
            if self.slots.contains_key(&p) {
                continue;
            }
            // Speculative work: a read error (e.g. an injected crash) must
            // not fail the demand read that already succeeded.
            let Ok(page) = self.inner.read_page(p) else {
                break;
            };
            self.tick += 1;
            self.insert(p, page);
            self.obs.readahead.inc();
            fetched += 1;
        }
        if let Some(t0) = t0 {
            if fetched > 0 {
                tracer.complete(
                    "device",
                    "readahead",
                    argus_trace::STORE_LANE,
                    None,
                    t0,
                    &[("pages", fetched), ("from", start)],
                );
            }
        }
    }
}

impl<S: PageStore> PageStore for PageCache<S> {
    fn read_page(&mut self, pno: PageNo) -> StorageResult<Page> {
        if !self.cfg.is_enabled() {
            return self.inner.read_page(pno);
        }
        self.tick += 1;
        if let Some(slot) = self.slots.get_mut(&pno) {
            slot.stamp = self.tick;
            self.obs.hits.inc();
            return Ok(slot.page.clone());
        }
        self.obs.misses.inc();
        let tracer = argus_trace::current();
        let t0 = tracer.device_detail().then(|| tracer.now());
        let page = self.inner.read_page(pno)?;
        if let Some(t0) = t0 {
            tracer.complete(
                "device",
                "page_read",
                argus_trace::STORE_LANE,
                None,
                t0,
                &[("pno", pno)],
            );
        }
        self.insert(pno, page.clone());
        self.maybe_readahead(pno);
        self.last_miss = Some(pno);
        Ok(page)
    }

    fn write_page(&mut self, pno: PageNo, page: &Page) -> StorageResult<()> {
        // Write-through: media first, cache only after the media accepted
        // it, so the cache can never claim a write the device lost.
        let tracer = argus_trace::current();
        let t0 = tracer.device_detail().then(|| tracer.now());
        self.inner.write_page(pno, page)?;
        if let Some(t0) = t0 {
            tracer.complete(
                "device",
                "page_write",
                argus_trace::STORE_LANE,
                None,
                t0,
                &[("pno", pno)],
            );
        }
        if self.cfg.is_enabled() {
            self.tick += 1;
            self.insert(pno, page.clone());
        }
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn sync(&mut self) -> StorageResult<()> {
        self.inner.sync()
    }

    fn stats(&self) -> DeviceStats {
        self.inner.stats()
    }

    fn invalidate_volatile(&mut self) {
        self.slots.clear();
        self.last_miss = None;
        self.inner.invalidate_volatile();
    }

    fn decay_page(&mut self, pno: PageNo) -> bool {
        // Decay happens on the media; drop any cached copy so the next read
        // actually visits (and repairs) the decayed page.
        self.slots.remove(&pno);
        self.inner.decay_page(pno)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultPlan, MemStore};
    use argus_sim::{CostModel, SimClock};

    fn cached(cfg: CacheConfig) -> PageCache<MemStore> {
        PageCache::new(MemStore::new(SimClock::new(), CostModel::fast()), cfg)
    }

    fn small(n: u8) -> Page {
        Page::from_bytes(&[n])
    }

    #[test]
    fn repeated_reads_hit_without_touching_the_device() {
        let mut c = cached(CacheConfig {
            capacity: 4,
            readahead: 0,
        });
        c.write_page(3, &small(3)).unwrap();
        let before = c.stats().snapshot();
        // Write-through populated the cache: the read is free.
        assert_eq!(c.read_page(3).unwrap(), small(3));
        assert_eq!(c.read_page(3).unwrap(), small(3));
        assert_eq!(c.stats().snapshot().since(&before).reads(), 0);
    }

    #[test]
    fn descending_walk_triggers_ascending_prefetch() {
        let mut c = cached(CacheConfig {
            capacity: 32,
            readahead: 4,
        });
        for pno in 0..16 {
            c.write_page(pno, &small(pno as u8)).unwrap();
        }
        c.invalidate_volatile(); // start cold, like recovery does
        let before = c.stats().snapshot();
        for pno in (0..16).rev() {
            assert_eq!(c.read_page(pno).unwrap(), small(pno as u8));
        }
        let delta = c.stats().snapshot().since(&before);
        // Every page was read from the device exactly once (demand misses
        // plus prefetches), and most at the sequential rate.
        assert_eq!(delta.reads(), 16);
        assert!(
            delta.seq_reads > delta.rand_reads,
            "prefetch should convert the backward walk to sequential reads: {delta}"
        );
    }

    #[test]
    fn ascending_scan_prefetches_ahead() {
        let mut c = cached(CacheConfig {
            capacity: 32,
            readahead: 4,
        });
        for pno in 0..12 {
            c.write_page(pno, &small(pno as u8)).unwrap();
        }
        c.invalidate_volatile();
        for pno in 0..12 {
            assert_eq!(c.read_page(pno).unwrap(), small(pno as u8));
        }
        assert_eq!(c.stats().snapshot().reads(), 12);
    }

    #[test]
    fn lru_evicts_the_coldest_page() {
        let mut c = cached(CacheConfig {
            capacity: 2,
            readahead: 0,
        });
        c.write_page(0, &small(0)).unwrap();
        c.write_page(1, &small(1)).unwrap();
        c.read_page(0).unwrap(); // page 1 is now coldest
        c.write_page(2, &small(2)).unwrap(); // evicts 1
        let before = c.stats().snapshot();
        c.read_page(0).unwrap();
        c.read_page(2).unwrap();
        assert_eq!(c.stats().snapshot().since(&before).reads(), 0);
        c.read_page(1).unwrap();
        assert_eq!(c.stats().snapshot().since(&before).reads(), 1);
    }

    #[test]
    fn capacity_zero_is_a_pure_passthrough() {
        let mut c = cached(CacheConfig::disabled());
        c.write_page(0, &small(7)).unwrap();
        let before = c.stats().snapshot();
        c.read_page(0).unwrap();
        c.read_page(0).unwrap();
        assert_eq!(c.stats().snapshot().since(&before).reads(), 2);
    }

    #[test]
    fn invalidate_clears_cached_pages() {
        let mut c = cached(CacheConfig {
            capacity: 8,
            readahead: 0,
        });
        c.write_page(0, &small(9)).unwrap();
        c.invalidate_volatile();
        let before = c.stats().snapshot();
        assert_eq!(c.read_page(0).unwrap(), small(9));
        assert_eq!(c.stats().snapshot().since(&before).reads(), 1);
    }

    #[test]
    fn prefetch_error_does_not_fail_the_demand_read() {
        let plan = FaultPlan::new();
        let mut c = PageCache::new(
            MemStore::with_fault_plan(plan.clone(), SimClock::new(), CostModel::fast()),
            CacheConfig {
                capacity: 8,
                readahead: 4,
            },
        );
        for pno in 0..8 {
            c.write_page(pno, &small(pno as u8)).unwrap();
        }
        c.invalidate_volatile();
        // Walk down to establish a run, then crash the device: the demand
        // read fails cleanly, and no half-prefetched state corrupts later
        // reads after the heal.
        c.read_page(7).unwrap();
        plan.arm_after_writes(0);
        let _ = c.write_page(8, &small(8));
        assert!(c.read_page(3).is_err());
        plan.heal();
        c.invalidate_volatile();
        for pno in 0..8 {
            assert_eq!(c.read_page(pno).unwrap(), small(pno as u8));
        }
    }
}
