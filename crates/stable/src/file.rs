//! A file-backed page store.

use crate::store::SeqTracker;
use crate::{Page, PageNo, PageStore, StorageResult, PAGE_SIZE};
use argus_sim::{CostModel, DeviceStats, OpKind, SimClock};
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;

/// A page store persisted in a regular file.
///
/// This is the "real device" backend: examples use it to demonstrate that a
/// guardian's stable state survives an actual process restart. It relies on
/// the filesystem for sector atomicity (fine for demonstration; the simulated
/// [`crate::MirroredDisk`] is what the fault-injection tests exercise).
#[derive(Debug)]
pub struct FileStore {
    file: File,
    pages: u64,
    stats: DeviceStats,
    clock: SimClock,
    model: CostModel,
    tracker: SeqTracker,
}

impl FileStore {
    /// Opens (creating if absent) the store at `path`.
    pub fn open(path: &Path, clock: SimClock, model: CostModel) -> StorageResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let pages = len / PAGE_SIZE as u64;
        Ok(Self {
            file,
            pages,
            stats: DeviceStats::new(),
            clock,
            model,
            tracker: SeqTracker::default(),
        })
    }
}

impl PageStore for FileStore {
    fn read_page(&mut self, pno: PageNo) -> StorageResult<Page> {
        let kind = if self.tracker.classify(pno) {
            OpKind::SeqRead
        } else {
            OpKind::RandRead
        };
        self.stats.charge(kind, &self.model, &self.clock);
        if pno >= self.pages {
            return Ok(Page::zeroed());
        }
        let mut page = Page::zeroed();
        self.file
            .read_exact_at(page.as_mut_slice(), pno * PAGE_SIZE as u64)?;
        Ok(page)
    }

    fn write_page(&mut self, pno: PageNo, page: &Page) -> StorageResult<()> {
        let kind = if self.tracker.classify(pno) {
            OpKind::SeqWrite
        } else {
            OpKind::RandWrite
        };
        self.stats.charge(kind, &self.model, &self.clock);
        self.file
            .write_all_at(page.as_slice(), pno * PAGE_SIZE as u64)?;
        self.pages = self.pages.max(pno + 1);
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.pages
    }

    fn sync(&mut self) -> StorageResult<()> {
        self.stats.charge(OpKind::Force, &self.model, &self.clock);
        self.file.sync_data()?;
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("argus-filestore-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip_across_reopen() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let page = Page::from_bytes(b"persistent");
        {
            let mut s = FileStore::open(&path, SimClock::new(), CostModel::fast()).unwrap();
            s.write_page(3, &page).unwrap();
            s.sync().unwrap();
        }
        {
            let mut s = FileStore::open(&path, SimClock::new(), CostModel::fast()).unwrap();
            assert_eq!(s.page_count(), 4);
            assert_eq!(s.read_page(3).unwrap(), page);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unwritten_pages_read_zero() {
        let path = temp_path("zero");
        let _ = std::fs::remove_file(&path);
        let mut s = FileStore::open(&path, SimClock::new(), CostModel::fast()).unwrap();
        assert_eq!(s.read_page(42).unwrap(), Page::zeroed());
        let _ = std::fs::remove_file(&path);
    }
}
