//! A durable file-backed page store.

use crate::store::SeqTracker;
use crate::{Page, PageNo, PageStore, StorageResult, PAGE_SIZE};
use argus_sim::{CostModel, DeviceStats, OpKind, SimClock};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;

/// How [`DurableFileStore`] makes writes survive a power cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityMode {
    /// Buffered page writes; [`PageStore::sync`] issues `fsync`
    /// (`File::sync_all`). One fsync covers every write staged since the
    /// last barrier — the mode group commit wants.
    #[default]
    Fsync,
    /// The file is opened `O_DSYNC`: every physical write returns only once
    /// durable, so `sync` needs no separate fsync. Write combining still
    /// batches staged pages, so the barrier count equals the number of
    /// coalesced write runs rather than the number of page writes.
    /// Falls back to [`DurabilityMode::Fsync`] semantics off Linux.
    Dsync,
}

/// `O_DSYNC` on Linux (we carry no libc dependency).
#[cfg(target_os = "linux")]
const O_DSYNC: i32 = 0x1000;

/// Observability handles for the real-I/O path, shared vocabulary with the
/// wall-clock bench tier (E18/E19) and the VOPR's metrics reports.
#[derive(Debug)]
struct FileObs {
    fsyncs: argus_obs::Counter,
    bytes_written: argus_obs::Counter,
}

impl FileObs {
    fn resolve() -> Self {
        let reg = argus_obs::current();
        Self {
            fsyncs: reg.counter("stable.file.fsyncs"),
            bytes_written: reg.counter("stable.file.bytes_written"),
        }
    }
}

/// A page store persisted durably in a regular file.
///
/// This is the "real device" backend behind the same [`PageStore`] trait the
/// simulated stores implement, so every recovery organization, the
/// [`crate::PageCache`], and the housekeeping sweeper run unchanged on an
/// actual disk. Three properties make it production-grade rather than a
/// demo:
///
/// * **Durable forces.** `sync` really reaches the platter: `fsync`
///   (`sync_all`) in the default [`DurabilityMode::Fsync`], or `O_DSYNC`
///   writes in [`DurabilityMode::Dsync`]. File *creation* is made durable
///   too — the parent directory is fsynced after creating the file, so a
///   power cut right after the first force cannot lose the file's very
///   existence (the classic create-without-dir-fsync bug).
/// * **Write combining.** Page writes are staged in memory and only hit the
///   file when `sync` runs, coalesced into one `pwrite` per contiguous page
///   run. The group-commit [`ForceScheduler`](argus_slog) above turns N
///   staged commits into one force, and this layer turns that force into
///   one data write + one fsync — the E18 wall-clock experiment measures
///   exactly this multiplication.
/// * **Honest crash semantics.** Staged pages are volatile:
///   `invalidate_volatile` (run on every log open/reopen, i.e. simulated
///   power cut) drops them, so an unforced write is *gone* after a crash
///   exactly as on real hardware.
///
/// Torn-write assumption: single-page (512-byte) writes are atomic, matching
/// the sector-atomicity assumption the simulated [`crate::RawDisk`] enforces
/// and classic disks provide. The simulated [`crate::MirroredDisk`] is what
/// the fault-injection suites exercise for decay/torn-page recovery; this
/// backend relies on the filesystem instead.
#[derive(Debug)]
pub struct DurableFileStore {
    file: File,
    pages: u64,
    /// Pages written since the last sync, waiting to be combined into
    /// contiguous `pwrite`s. Volatile by design.
    staged: BTreeMap<PageNo, Page>,
    /// Scratch buffer reused across syncs for coalesced runs.
    scratch: Vec<u8>,
    mode: DurabilityMode,
    stats: DeviceStats,
    clock: SimClock,
    model: CostModel,
    tracker: SeqTracker,
    obs: FileObs,
}

/// The historical name: the durable store replaced the old demo
/// implementation in place, so every existing call site keeps working.
pub type FileStore = DurableFileStore;

impl DurableFileStore {
    /// Opens (creating if absent) the store at `path` with the default
    /// [`DurabilityMode::Fsync`].
    pub fn open(path: &Path, clock: SimClock, model: CostModel) -> StorageResult<Self> {
        Self::open_with(path, clock, model, DurabilityMode::default())
    }

    /// Opens (creating if absent) the store at `path` in `mode`.
    pub fn open_with(
        path: &Path,
        clock: SimClock,
        model: CostModel,
        mode: DurabilityMode,
    ) -> StorageResult<Self> {
        let existed = path.exists();
        let mut opts = OpenOptions::new();
        opts.read(true).write(true).create(true).truncate(false);
        #[cfg(target_os = "linux")]
        if mode == DurabilityMode::Dsync {
            use std::os::unix::fs::OpenOptionsExt;
            opts.custom_flags(O_DSYNC);
        }
        let file = opts.open(path)?;
        let obs = FileObs::resolve();
        if !existed {
            // Durability bug regression: creating the file is itself a write
            // to the *directory*. Without fsyncing the parent, a power cut
            // after the first "durable" force can lose the whole file.
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                File::open(dir)?.sync_all()?;
                obs.fsyncs.inc();
            }
        }
        let len = file.metadata()?.len();
        let pages = len / PAGE_SIZE as u64;
        Ok(Self {
            file,
            pages,
            staged: BTreeMap::new(),
            scratch: Vec::new(),
            mode,
            stats: DeviceStats::new(),
            clock,
            model,
            tracker: SeqTracker::default(),
            obs,
        })
    }

    /// Drains the staged pages to the file, coalescing contiguous page runs
    /// into single `pwrite`s.
    fn flush_staged(&mut self) -> StorageResult<()> {
        let staged = std::mem::take(&mut self.staged);
        let mut run_start: Option<PageNo> = None;
        let mut next: PageNo = 0;
        let mut scratch = std::mem::take(&mut self.scratch);
        let flush_run = |file: &File, start: PageNo, buf: &mut Vec<u8>| -> StorageResult<()> {
            if buf.is_empty() {
                return Ok(());
            }
            file.write_all_at(buf, start * PAGE_SIZE as u64)?;
            self.obs.bytes_written.add(buf.len() as u64);
            if self.mode == DurabilityMode::Dsync && cfg!(target_os = "linux") {
                // Each O_DSYNC write is its own durability barrier.
                self.obs.fsyncs.inc();
            }
            buf.clear();
            Ok(())
        };
        for (pno, page) in staged {
            if run_start.is_none() || pno != next {
                if let Some(start) = run_start {
                    flush_run(&self.file, start, &mut scratch)?;
                }
                run_start = Some(pno);
            }
            scratch.extend_from_slice(page.as_slice());
            next = pno + 1;
        }
        if let Some(start) = run_start {
            flush_run(&self.file, start, &mut scratch)?;
        }
        self.scratch = scratch;
        Ok(())
    }
}

impl PageStore for DurableFileStore {
    fn read_page(&mut self, pno: PageNo) -> StorageResult<Page> {
        let kind = if self.tracker.classify(pno) {
            OpKind::SeqRead
        } else {
            OpKind::RandRead
        };
        self.stats.charge(kind, &self.model, &self.clock);
        if let Some(page) = self.staged.get(&pno) {
            return Ok(page.clone());
        }
        let mut page = Page::zeroed();
        let offset = pno * PAGE_SIZE as u64;
        // The file may be shorter than `pages` claims while writes are
        // staged; anything past EOF reads as zeros.
        let len = self.file.metadata()?.len();
        if offset >= len {
            return Ok(page);
        }
        let have = ((len - offset) as usize).min(PAGE_SIZE);
        self.file
            .read_exact_at(&mut page.as_mut_slice()[..have], offset)?;
        Ok(page)
    }

    fn write_page(&mut self, pno: PageNo, page: &Page) -> StorageResult<()> {
        let kind = if self.tracker.classify(pno) {
            OpKind::SeqWrite
        } else {
            OpKind::RandWrite
        };
        self.stats.charge(kind, &self.model, &self.clock);
        self.staged.insert(pno, page.clone());
        self.pages = self.pages.max(pno + 1);
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.pages
    }

    fn sync(&mut self) -> StorageResult<()> {
        self.stats.charge(OpKind::Force, &self.model, &self.clock);
        let wrote = !self.staged.is_empty();
        self.flush_staged()?;
        if wrote {
            match self.mode {
                DurabilityMode::Fsync => {
                    self.file.sync_all()?;
                    self.obs.fsyncs.inc();
                }
                DurabilityMode::Dsync => {
                    if !cfg!(target_os = "linux") {
                        self.file.sync_all()?;
                        self.obs.fsyncs.inc();
                    }
                }
            }
        }
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        self.stats.clone()
    }

    fn invalidate_volatile(&mut self) {
        // A crash loses whatever was staged but never synced — drop it and
        // recompute the page count from the file alone, exactly what a real
        // power cut leaves behind.
        if !self.staged.is_empty() {
            self.staged.clear();
            self.pages = self
                .file
                .metadata()
                .map(|m| m.len() / PAGE_SIZE as u64)
                .unwrap_or(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("argus-filestore-{}-{}", std::process::id(), name));
        p
    }

    fn open(path: &Path) -> DurableFileStore {
        DurableFileStore::open(path, SimClock::new(), CostModel::fast()).unwrap()
    }

    #[test]
    fn roundtrip_across_reopen() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let page = Page::from_bytes(b"persistent");
        {
            let mut s = open(&path);
            s.write_page(3, &page).unwrap();
            s.sync().unwrap();
        }
        {
            let mut s = open(&path);
            assert_eq!(s.page_count(), 4);
            assert_eq!(s.read_page(3).unwrap(), page);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unwritten_pages_read_zero() {
        let path = temp_path("zero");
        let _ = std::fs::remove_file(&path);
        let mut s = open(&path);
        assert_eq!(s.read_page(42).unwrap(), Page::zeroed());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn staged_writes_read_back_before_sync() {
        let path = temp_path("staged");
        let _ = std::fs::remove_file(&path);
        let mut s = open(&path);
        let page = Page::from_bytes(b"staged");
        s.write_page(7, &page).unwrap();
        assert_eq!(s.read_page(7).unwrap(), page);
        assert_eq!(s.page_count(), 8);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unsynced_writes_are_lost_on_crash() {
        // Regression for the durability contract: a write that was never
        // forced must NOT survive `invalidate_volatile` (the power cut every
        // log open/reopen simulates). The old demo store wrote through
        // eagerly, silently making unforced data look durable.
        let path = temp_path("volatile");
        let _ = std::fs::remove_file(&path);
        let mut s = open(&path);
        s.write_page(0, &Page::from_bytes(b"forced")).unwrap();
        s.sync().unwrap();
        s.write_page(1, &Page::from_bytes(b"unforced")).unwrap();
        s.invalidate_volatile();
        assert_eq!(s.read_page(1).unwrap(), Page::zeroed());
        assert_eq!(s.page_count(), 1);
        assert_eq!(s.read_page(0).unwrap(), Page::from_bytes(b"forced"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn force_issues_a_real_fsync_and_creation_syncs_the_directory() {
        // Regression for the durability bug: forces used to be charged to
        // the simulated model only. Now each sync with dirty data issues an
        // fsync and file creation fsyncs the parent directory, both visible
        // through the stable.file.fsyncs counter.
        let reg = argus_obs::Registry::new();
        let _scope = reg.enter();
        let path = temp_path("fsync-counter");
        let _ = std::fs::remove_file(&path);
        let mut s = open(&path);
        let after_create = reg.counter("stable.file.fsyncs").get();
        assert_eq!(after_create, 1, "file creation must fsync the directory");
        s.write_page(0, &Page::from_bytes(b"a")).unwrap();
        s.write_page(1, &Page::from_bytes(b"b")).unwrap();
        s.sync().unwrap();
        assert_eq!(reg.counter("stable.file.fsyncs").get(), after_create + 1);
        assert_eq!(
            reg.counter("stable.file.bytes_written").get(),
            2 * PAGE_SIZE as u64
        );
        // A sync with nothing new to flush is free.
        s.sync().unwrap();
        assert_eq!(reg.counter("stable.file.fsyncs").get(), after_create + 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_combining_coalesces_contiguous_runs() {
        // Eight staged pages, two contiguous runs -> two pwrites, one fsync.
        let reg = argus_obs::Registry::new();
        let _scope = reg.enter();
        let path = temp_path("combine");
        let _ = std::fs::remove_file(&path);
        let mut s = open(&path);
        for pno in [0u64, 1, 2, 3, 10, 11, 12, 13] {
            s.write_page(pno, &Page::from_bytes(&[pno as u8])).unwrap();
        }
        let fsyncs_before = reg.counter("stable.file.fsyncs").get();
        s.sync().unwrap();
        assert_eq!(reg.counter("stable.file.fsyncs").get(), fsyncs_before + 1);
        assert_eq!(
            reg.counter("stable.file.bytes_written").get(),
            8 * PAGE_SIZE as u64
        );
        for pno in [0u64, 1, 2, 3, 10, 11, 12, 13] {
            assert_eq!(s.read_page(pno).unwrap(), Page::from_bytes(&[pno as u8]));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dsync_mode_roundtrips() {
        let path = temp_path("dsync");
        let _ = std::fs::remove_file(&path);
        let page = Page::from_bytes(b"dsync");
        {
            let mut s = DurableFileStore::open_with(
                &path,
                SimClock::new(),
                CostModel::fast(),
                DurabilityMode::Dsync,
            )
            .unwrap();
            s.write_page(2, &page).unwrap();
            s.sync().unwrap();
        }
        {
            let mut s = open(&path);
            assert_eq!(s.read_page(2).unwrap(), page);
        }
        let _ = std::fs::remove_file(&path);
    }
}
