//! Fixed-size storage pages.

use std::fmt;

/// Size of one storage page in bytes.
///
/// Small by modern standards, matching the early-80s devices the thesis has
/// in mind; nothing above this layer depends on the exact value.
pub const PAGE_SIZE: usize = 512;

/// A page number on a device.
pub type PageNo = u64;

/// One page of storage contents.
///
/// Pages are plain byte blocks; interpretation belongs to higher layers.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// Creates a zero-filled page.
    pub fn zeroed() -> Self {
        Self {
            bytes: Box::new([0; PAGE_SIZE]),
        }
    }

    /// Creates a page from a byte slice, zero-padding to [`PAGE_SIZE`].
    /// Panics if `data` is longer than a page.
    pub fn from_bytes(data: &[u8]) -> Self {
        assert!(
            data.len() <= PAGE_SIZE,
            "page overflow: {} bytes",
            data.len()
        );
        let mut page = Self::zeroed();
        page.bytes[..data.len()].copy_from_slice(data);
        page
    }

    /// Returns the page contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..]
    }

    /// Returns the page contents mutably.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.bytes[..]
    }

    /// A cheap content fingerprint used by the raw-disk simulator to detect
    /// torn/decayed pages, standing in for a sector ECC.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the page body.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in self.bytes.iter() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Page(fp={:016x})", self.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_all_zero() {
        assert!(Page::zeroed().as_slice().iter().all(|&b| b == 0));
    }

    #[test]
    fn from_bytes_pads_with_zeros() {
        let p = Page::from_bytes(&[1, 2, 3]);
        assert_eq!(&p.as_slice()[..3], &[1, 2, 3]);
        assert!(p.as_slice()[3..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn from_bytes_rejects_oversize() {
        Page::from_bytes(&[0u8; PAGE_SIZE + 1]);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = Page::from_bytes(b"hello");
        let b = Page::from_bytes(b"hello");
        let c = Page::from_bytes(b"world");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
