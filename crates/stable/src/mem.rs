//! An in-memory page store.

use crate::store::SeqTracker;
use crate::{FaultPlan, Page, PageNo, PageStore, StorageResult};
use argus_sim::{CostModel, DeviceStats, OpKind, SimClock};

/// An always-good in-memory page store.
///
/// Used where media decay is not under test: benchmarks and node-crash
/// experiments. It still charges simulated I/O cost and still honours an
/// optional [`FaultPlan`] so whole-node crashes can be injected cheaply, and
/// its contents survive such a crash (they stand in for the platter).
#[derive(Debug)]
pub struct MemStore {
    pages: Vec<Page>,
    plan: Option<FaultPlan>,
    stats: DeviceStats,
    clock: SimClock,
    model: CostModel,
    tracker: SeqTracker,
}

impl MemStore {
    /// Creates an empty store with no fault injection.
    pub fn new(clock: SimClock, model: CostModel) -> Self {
        Self {
            pages: Vec::new(),
            plan: None,
            stats: DeviceStats::new(),
            clock,
            model,
            tracker: SeqTracker::default(),
        }
    }

    /// Creates an empty store that consults `plan` on every operation.
    pub fn with_fault_plan(plan: FaultPlan, clock: SimClock, model: CostModel) -> Self {
        Self {
            plan: Some(plan),
            ..Self::new(clock, model)
        }
    }

    /// Extracts the durable contents (what survives a simulated crash).
    pub fn into_media(self) -> Vec<Page> {
        self.pages
    }

    /// Rebuilds a store over surviving contents after a restart.
    pub fn from_media(
        pages: Vec<Page>,
        plan: Option<FaultPlan>,
        clock: SimClock,
        model: CostModel,
    ) -> Self {
        Self {
            pages,
            plan,
            stats: DeviceStats::new(),
            clock,
            model,
            tracker: SeqTracker::default(),
        }
    }
}

impl PageStore for MemStore {
    fn read_page(&mut self, pno: PageNo) -> StorageResult<Page> {
        if let Some(plan) = &self.plan {
            plan.note_read_at(pno)?;
        }
        let kind = if self.tracker.classify(pno) {
            OpKind::SeqRead
        } else {
            OpKind::RandRead
        };
        self.stats.charge(kind, &self.model, &self.clock);
        match self.pages.get(pno as usize) {
            Some(p) => Ok(p.clone()),
            None => Ok(Page::zeroed()),
        }
    }

    fn write_page(&mut self, pno: PageNo, page: &Page) -> StorageResult<()> {
        if let Some(plan) = &self.plan {
            plan.note_write_at(pno)?;
        }
        let kind = if self.tracker.classify(pno) {
            OpKind::SeqWrite
        } else {
            OpKind::RandWrite
        };
        self.stats.charge(kind, &self.model, &self.clock);
        while self.pages.len() <= pno as usize {
            self.pages.push(Page::zeroed());
        }
        self.pages[pno as usize] = page.clone();
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    fn sync(&mut self) -> StorageResult<()> {
        if let Some(plan) = &self.plan {
            plan.note_force()?;
        }
        self.stats.charge(OpKind::Force, &self.model, &self.clock);
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> MemStore {
        MemStore::new(SimClock::new(), CostModel::fast())
    }

    #[test]
    fn roundtrip_and_growth() {
        let mut s = store();
        let p = Page::from_bytes(b"abc");
        s.write_page(9, &p).unwrap();
        assert_eq!(s.page_count(), 10);
        assert_eq!(s.read_page(9).unwrap(), p);
        assert_eq!(s.read_page(4).unwrap(), Page::zeroed());
    }

    #[test]
    fn reads_past_end_are_zero() {
        let mut s = store();
        assert_eq!(s.read_page(100).unwrap(), Page::zeroed());
        assert_eq!(s.page_count(), 0);
    }

    #[test]
    fn fault_plan_crashes_the_store() {
        let plan = FaultPlan::new();
        let mut s = MemStore::with_fault_plan(plan.clone(), SimClock::new(), CostModel::fast());
        s.write_page(0, &Page::zeroed()).unwrap();
        plan.arm_after_writes(0);
        assert!(s.write_page(1, &Page::zeroed()).unwrap_err().is_crash());
        assert!(s.read_page(0).unwrap_err().is_crash());
        plan.heal();
        // Contents written before the crash survive.
        assert_eq!(s.read_page(0).unwrap(), Page::zeroed());
        assert_eq!(s.page_count(), 1);
    }

    #[test]
    fn media_survive_restart() {
        let mut s = store();
        let p = Page::from_bytes(b"durable");
        s.write_page(2, &p).unwrap();
        let media = s.into_media();
        let mut s = MemStore::from_media(media, None, SimClock::new(), CostModel::fast());
        assert_eq!(s.read_page(2).unwrap(), p);
    }
}
