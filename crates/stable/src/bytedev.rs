//! A byte-addressed extent view over a page store.

use crate::{Page, PageNo, PageStore, StorageResult, PAGE_SIZE};

/// Byte-granular reads and writes over any [`PageStore`].
///
/// The stable log stores variable-length records; this adapter handles the
/// page splitting. A one-page tail cache avoids re-reading the partially
/// filled last page on every append — the cache is volatile and is simply
/// dropped (with the device) on a crash.
#[derive(Debug)]
pub struct ByteDevice<S: PageStore> {
    store: S,
    cache: Option<(PageNo, Page)>,
}

impl<S: PageStore> ByteDevice<S> {
    /// Wraps a page store.
    pub fn new(store: S) -> Self {
        Self { store, cache: None }
    }

    /// Returns the underlying store.
    pub fn into_inner(self) -> S {
        self.store
    }

    /// Borrows the underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Borrows the underlying store mutably (drops the cache, which may be
    /// stale after direct page access).
    pub fn store_mut(&mut self) -> &mut S {
        self.cache = None;
        &mut self.store
    }

    fn load_page(&mut self, pno: PageNo) -> StorageResult<Page> {
        if let Some((cached, page)) = &self.cache {
            if *cached == pno {
                return Ok(page.clone());
            }
        }
        let page = self.store.read_page(pno)?;
        self.cache = Some((pno, page.clone()));
        Ok(page)
    }

    fn store_page(&mut self, pno: PageNo, page: Page) -> StorageResult<()> {
        self.store.write_page(pno, &page)?;
        self.cache = Some((pno, page));
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at byte `offset`.
    pub fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> StorageResult<()> {
        let mut pos = 0usize;
        while pos < buf.len() {
            let byte = offset + pos as u64;
            let pno = byte / PAGE_SIZE as u64;
            let in_page = (byte % PAGE_SIZE as u64) as usize;
            let take = (PAGE_SIZE - in_page).min(buf.len() - pos);
            let page = self.load_page(pno)?;
            buf[pos..pos + take].copy_from_slice(&page.as_slice()[in_page..in_page + take]);
            pos += take;
        }
        Ok(())
    }

    /// Writes `data` starting at byte `offset`, read-modify-writing partial
    /// pages at the extent's edges.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) -> StorageResult<()> {
        let mut pos = 0usize;
        while pos < data.len() {
            let byte = offset + pos as u64;
            let pno = byte / PAGE_SIZE as u64;
            let in_page = (byte % PAGE_SIZE as u64) as usize;
            let take = (PAGE_SIZE - in_page).min(data.len() - pos);
            let mut page = if in_page == 0 && take == PAGE_SIZE {
                Page::zeroed() // full-page overwrite: no read needed
            } else {
                self.load_page(pno)?
            };
            page.as_mut_slice()[in_page..in_page + take].copy_from_slice(&data[pos..pos + take]);
            self.store_page(pno, page)?;
            pos += take;
        }
        Ok(())
    }

    /// Write barrier delegated to the store.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.store.sync()
    }

    /// Device length in bytes (page-granular).
    pub fn len_bytes(&self) -> u64 {
        self.store.page_count() * PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use argus_sim::{CostModel, SimClock};

    fn dev() -> ByteDevice<MemStore> {
        ByteDevice::new(MemStore::new(SimClock::new(), CostModel::fast()))
    }

    #[test]
    fn roundtrip_within_one_page() {
        let mut d = dev();
        d.write_at(10, b"hello").unwrap();
        let mut buf = [0u8; 5];
        d.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn roundtrip_across_page_boundary() {
        let mut d = dev();
        let data: Vec<u8> = (0..1500).map(|i| (i % 251) as u8).collect();
        let offset = PAGE_SIZE as u64 - 100;
        d.write_at(offset, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        d.read_at(offset, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn overlapping_writes_compose() {
        let mut d = dev();
        d.write_at(0, b"aaaaaaaaaa").unwrap();
        d.write_at(5, b"bbbbb").unwrap();
        let mut buf = [0u8; 10];
        d.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"aaaaabbbbb");
    }

    #[test]
    fn appends_reuse_the_tail_page_cache() {
        let mut d = dev();
        d.write_at(0, b"0123").unwrap();
        let before = d.store().stats().snapshot();
        d.write_at(4, b"4567").unwrap();
        let delta = d.store().stats().snapshot().since(&before);
        // Tail page is cached: the second append performs no read.
        assert_eq!(delta.reads(), 0);
        let mut buf = [0u8; 8];
        d.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"01234567");
    }

    #[test]
    fn full_page_overwrite_skips_read() {
        let mut d = dev();
        let page_of_x = vec![b'x'; PAGE_SIZE];
        let before = d.store().stats().snapshot();
        d.write_at(PAGE_SIZE as u64 * 3, &page_of_x).unwrap();
        let delta = d.store().stats().snapshot().since(&before);
        assert_eq!(delta.reads(), 0);
        assert_eq!(delta.writes(), 1);
    }
}
