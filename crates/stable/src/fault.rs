//! Crash and decay injection.

use crate::{PageNo, StorageError, StorageResult};
use std::sync::{Arc, Mutex};

/// Kind of low-level device operation observed by a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceOp {
    /// A page read.
    Read,
    /// A page write.
    Write,
    /// A durability barrier (`sync`).
    Force,
}

/// One recorded device operation, in issue order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// What kind of operation.
    pub op: DeviceOp,
    /// Page touched, when the call site knows it (forces have none).
    pub page: Option<PageNo>,
}

/// Lifetime totals of operations a plan has observed (attempted operations:
/// the op that fires a crash is counted, ops refused while down are not).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Page reads observed.
    pub reads: u64,
    /// Page writes observed.
    pub writes: u64,
    /// Durability barriers observed.
    pub forces: u64,
}

impl OpCounts {
    /// All operations of any kind.
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.forces
    }

    /// Per-kind difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            forces: self.forces.saturating_sub(earlier.forces),
        }
    }
}

/// A shared fault plan for one simulated node's device stack.
///
/// A plan is armed with a countdown of low-level page writes (or, via
/// [`FaultPlan::arm_after_ops`], of *any* device operations — reads and
/// forces included, which is what lets a crash land in the middle of
/// recovery's read-mostly log scan); when the countdown reaches zero the node
/// "crashes": the in-progress write is torn and every subsequent operation
/// fails with [`StorageError::Crashed`] until the harness calls
/// [`FaultPlan::heal`] (modelling the node restarting).
///
/// The plan also doubles as the sweep instrument: it keeps lifetime
/// [`OpCounts`] so a harness can measure how many device operations a
/// workload or a recovery issued (the sweepable crash-point range), an
/// optional op trace ([`FaultPlan::start_trace`] / [`FaultPlan::take_trace`])
/// for minimizing counterexamples, and the *frontier* page — the page the
/// most recent write attempt touched, i.e. where a torn write landed.
///
/// Clones share state, so one plan can be threaded through a mirrored disk,
/// the log on top of it, and the recovery system above that.
///
/// # Examples
///
/// ```
/// use argus_stable::FaultPlan;
///
/// let plan = FaultPlan::new();
/// plan.arm_after_writes(2);
/// assert!(plan.note_write().is_ok());   // write 1
/// assert!(plan.note_write().is_ok());   // write 2
/// assert!(plan.note_write().is_err());  // crash fires here
/// assert!(plan.is_crashed());
/// plan.heal();
/// assert!(plan.note_write().is_ok());
/// assert_eq!(plan.op_counts().writes, 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Mutex<PlanInner>>,
}

#[derive(Debug, Default)]
struct PlanInner {
    /// Remaining low-level writes before a crash fires. `None` = disarmed.
    writes_until_crash: Option<u64>,
    /// Remaining device operations of *any* kind before a crash fires.
    ops_until_crash: Option<u64>,
    /// Set once a crash has fired; cleared by `heal`.
    crashed: bool,
    /// Total crashes fired over the plan's lifetime.
    crash_count: u64,
    /// Lifetime operation totals.
    counts: OpCounts,
    /// In-flight op trace, when recording.
    trace: Option<Vec<TraceEntry>>,
    /// Page of the most recent write attempt (including a torn one).
    frontier: Option<PageNo>,
}

impl FaultPlan {
    /// Creates a disarmed plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the plan to crash when the `n + 1`-th subsequent low-level write
    /// begins (i.e. `n` more writes complete, the next one tears).
    pub fn arm_after_writes(&self, n: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.writes_until_crash = Some(n);
    }

    /// Arms the plan to crash when the `n + 1`-th subsequent device operation
    /// of *any* kind (read, write, or force) begins. Unlike
    /// [`arm_after_writes`](Self::arm_after_writes) this can land a crash in
    /// the middle of a pure read sequence, e.g. recovery's backward log scan.
    pub fn arm_after_ops(&self, n: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.ops_until_crash = Some(n);
    }

    /// Disarms any pending crash without healing an already-fired one.
    pub fn disarm(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.writes_until_crash = None;
        inner.ops_until_crash = None;
    }

    fn note_op(&self, op: DeviceOp, page: Option<PageNo>) -> StorageResult<()> {
        let mut inner = self.inner.lock().unwrap();
        if inner.crashed {
            return Err(StorageError::Crashed);
        }
        match op {
            DeviceOp::Read => inner.counts.reads += 1,
            DeviceOp::Write => {
                inner.counts.writes += 1;
                if page.is_some() {
                    inner.frontier = page;
                }
            }
            DeviceOp::Force => inner.counts.forces += 1,
        }
        if let Some(trace) = &mut inner.trace {
            trace.push(TraceEntry { op, page });
        }
        let ops_fire = match &mut inner.ops_until_crash {
            Some(0) => {
                inner.ops_until_crash = None;
                true
            }
            Some(n) => {
                *n -= 1;
                false
            }
            None => false,
        };
        let write_fire = op == DeviceOp::Write
            && match &mut inner.writes_until_crash {
                Some(0) => {
                    inner.writes_until_crash = None;
                    true
                }
                Some(n) => {
                    *n -= 1;
                    false
                }
                None => false,
            };
        if ops_fire || write_fire {
            inner.crashed = true;
            inner.crash_count += 1;
            let crash_count = inner.crash_count;
            drop(inner);
            let obs = argus_obs::current();
            obs.inc("stable.crashes_fired");
            obs.event(argus_obs::Event::CrashFired { crash_count });
            Err(StorageError::Crashed)
        } else {
            Ok(())
        }
    }

    /// Called by devices before every low-level page write.
    ///
    /// Returns `Err(Crashed)` when the crash fires on this write (the caller
    /// must tear the page) or when the node is already down.
    pub fn note_write(&self) -> StorageResult<()> {
        self.note_op(DeviceOp::Write, None)
    }

    /// Like [`note_write`](Self::note_write) but records which page the write
    /// targets, so the sweep can find the crash frontier.
    pub fn note_write_at(&self, pno: PageNo) -> StorageResult<()> {
        self.note_op(DeviceOp::Write, Some(pno))
    }

    /// Called by devices before reads; a down node cannot read either, and an
    /// op-countdown ([`arm_after_ops`](Self::arm_after_ops)) can fire here.
    pub fn note_read(&self) -> StorageResult<()> {
        self.note_op(DeviceOp::Read, None)
    }

    /// Like [`note_read`](Self::note_read) with the page recorded.
    pub fn note_read_at(&self, pno: PageNo) -> StorageResult<()> {
        self.note_op(DeviceOp::Read, Some(pno))
    }

    /// Called by devices before a durability barrier (`sync`).
    pub fn note_force(&self) -> StorageResult<()> {
        self.note_op(DeviceOp::Force, None)
    }

    /// Returns whether the node is currently down.
    pub fn is_crashed(&self) -> bool {
        self.inner.lock().unwrap().crashed
    }

    /// Restarts the node: clears the crashed flag. Volatile state above the
    /// device layer must be discarded by the caller; the media keep whatever
    /// the crash left behind.
    pub fn heal(&self) {
        self.inner.lock().unwrap().crashed = false;
    }

    /// Whether a crash countdown is currently armed.
    pub fn is_armed(&self) -> bool {
        let inner = self.inner.lock().unwrap();
        inner.writes_until_crash.is_some() || inner.ops_until_crash.is_some()
    }

    /// Total crashes fired so far.
    pub fn crash_count(&self) -> u64 {
        self.inner.lock().unwrap().crash_count
    }

    /// Lifetime operation totals (attempted ops; refusals while down are not
    /// counted). Snapshot before and after a phase and subtract
    /// ([`OpCounts::since`]) to size a sweep.
    pub fn op_counts(&self) -> OpCounts {
        self.inner.lock().unwrap().counts
    }

    /// Page targeted by the most recent write attempt — where a torn write
    /// landed, which is where decay composed with a crash is interesting.
    pub fn frontier_page(&self) -> Option<PageNo> {
        self.inner.lock().unwrap().frontier
    }

    /// Begins recording an op trace (clearing any previous one).
    pub fn start_trace(&self) {
        self.inner.lock().unwrap().trace = Some(Vec::new());
    }

    /// Stops recording and returns the trace collected since
    /// [`start_trace`](Self::start_trace); empty if never started.
    pub fn take_trace(&self) -> Vec<TraceEntry> {
        self.inner.lock().unwrap().trace.take().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_never_fires() {
        let plan = FaultPlan::new();
        for _ in 0..1000 {
            plan.note_write().unwrap();
        }
        assert!(!plan.is_crashed());
        assert_eq!(plan.op_counts().writes, 1000);
    }

    #[test]
    fn countdown_fires_exactly_once_armed() {
        let plan = FaultPlan::new();
        plan.arm_after_writes(0);
        assert!(plan.note_write().is_err());
        assert_eq!(plan.crash_count(), 1);
        // Still down until healed.
        assert!(plan.note_write().is_err());
        assert_eq!(plan.crash_count(), 1);
    }

    #[test]
    fn reads_fail_while_down() {
        let plan = FaultPlan::new();
        plan.arm_after_writes(0);
        let _ = plan.note_write();
        assert!(plan.note_read().is_err());
        plan.heal();
        assert!(plan.note_read().is_ok());
    }

    #[test]
    fn disarm_cancels_pending_crash() {
        let plan = FaultPlan::new();
        plan.arm_after_writes(1);
        plan.arm_after_ops(1);
        plan.disarm();
        for _ in 0..10 {
            plan.note_write().unwrap();
        }
    }

    #[test]
    fn clones_share_the_plan() {
        let plan = FaultPlan::new();
        let other = plan.clone();
        plan.arm_after_writes(0);
        assert!(other.note_write().is_err());
        assert!(plan.is_crashed());
    }

    #[test]
    fn op_countdown_counts_reads_and_forces() {
        let plan = FaultPlan::new();
        plan.arm_after_ops(2);
        assert!(plan.note_read().is_ok()); // op 1
        assert!(plan.note_force().is_ok()); // op 2
        assert!(plan.note_read().is_err()); // crash fires on op 3, a read
        assert!(plan.is_crashed());
        assert_eq!(plan.crash_count(), 1);
    }

    #[test]
    fn write_countdown_ignores_reads() {
        let plan = FaultPlan::new();
        plan.arm_after_writes(1);
        for _ in 0..10 {
            plan.note_read().unwrap();
            plan.note_force().unwrap();
        }
        assert!(plan.note_write().is_ok());
        assert!(plan.note_write().is_err());
    }

    #[test]
    fn counts_trace_and_frontier() {
        let plan = FaultPlan::new();
        plan.start_trace();
        plan.note_read_at(7).unwrap();
        plan.note_write_at(3).unwrap();
        plan.note_force().unwrap();
        plan.note_write_at(9).unwrap();
        let counts = plan.op_counts();
        assert_eq!(
            counts,
            OpCounts {
                reads: 1,
                writes: 2,
                forces: 1
            }
        );
        assert_eq!(counts.total(), 4);
        assert_eq!(plan.frontier_page(), Some(9));
        let trace = plan.take_trace();
        assert_eq!(trace.len(), 4);
        assert_eq!(
            trace[1],
            TraceEntry {
                op: DeviceOp::Write,
                page: Some(3)
            }
        );
        assert_eq!(
            trace[2],
            TraceEntry {
                op: DeviceOp::Force,
                page: None
            }
        );
        // Recording stopped: nothing accumulates.
        plan.note_read().unwrap();
        assert!(plan.take_trace().is_empty());
    }

    #[test]
    fn torn_write_counts_and_sets_frontier() {
        let plan = FaultPlan::new();
        plan.arm_after_writes(0);
        assert!(plan.note_write_at(5).is_err());
        assert_eq!(plan.op_counts().writes, 1);
        assert_eq!(plan.frontier_page(), Some(5));
        // Refused ops while down are not counted.
        let _ = plan.note_write_at(6);
        assert_eq!(plan.op_counts().writes, 1);
        assert_eq!(plan.frontier_page(), Some(5));
    }

    #[test]
    fn op_counts_since_subtracts() {
        let plan = FaultPlan::new();
        plan.note_write().unwrap();
        let before = plan.op_counts();
        plan.note_write().unwrap();
        plan.note_read().unwrap();
        let delta = plan.op_counts().since(&before);
        assert_eq!(
            delta,
            OpCounts {
                reads: 1,
                writes: 1,
                forces: 0
            }
        );
    }
}
