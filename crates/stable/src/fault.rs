//! Crash and decay injection.

use crate::{StorageError, StorageResult};
use std::sync::{Arc, Mutex};

/// A shared fault plan for one simulated node's device stack.
///
/// A plan is armed with a countdown of low-level page writes; when the
/// countdown reaches zero the node "crashes": the in-progress write is torn
/// and every subsequent operation fails with [`StorageError::Crashed`] until
/// the harness calls [`FaultPlan::heal`] (modelling the node restarting).
///
/// Clones share state, so one plan can be threaded through a mirrored disk,
/// the log on top of it, and the recovery system above that.
///
/// # Examples
///
/// ```
/// use argus_stable::FaultPlan;
///
/// let plan = FaultPlan::new();
/// plan.arm_after_writes(2);
/// assert!(plan.note_write().is_ok());   // write 1
/// assert!(plan.note_write().is_ok());   // write 2
/// assert!(plan.note_write().is_err());  // crash fires here
/// assert!(plan.is_crashed());
/// plan.heal();
/// assert!(plan.note_write().is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Mutex<PlanInner>>,
}

#[derive(Debug, Default)]
struct PlanInner {
    /// Remaining low-level writes before a crash fires. `None` = disarmed.
    writes_until_crash: Option<u64>,
    /// Set once a crash has fired; cleared by `heal`.
    crashed: bool,
    /// Total crashes fired over the plan's lifetime.
    crash_count: u64,
}

impl FaultPlan {
    /// Creates a disarmed plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the plan to crash when the `n + 1`-th subsequent low-level write
    /// begins (i.e. `n` more writes complete, the next one tears).
    pub fn arm_after_writes(&self, n: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.writes_until_crash = Some(n);
    }

    /// Disarms a pending crash without healing an already-fired one.
    pub fn disarm(&self) {
        self.inner.lock().unwrap().writes_until_crash = None;
    }

    /// Called by devices before every low-level page write.
    ///
    /// Returns `Err(Crashed)` when the crash fires on this write (the caller
    /// must tear the page) or when the node is already down.
    pub fn note_write(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock().unwrap();
        if inner.crashed {
            return Err(StorageError::Crashed);
        }
        match &mut inner.writes_until_crash {
            Some(0) => {
                inner.writes_until_crash = None;
                inner.crashed = true;
                inner.crash_count += 1;
                let crash_count = inner.crash_count;
                drop(inner);
                let obs = argus_obs::current();
                obs.inc("stable.crashes_fired");
                obs.event(argus_obs::Event::CrashFired { crash_count });
                Err(StorageError::Crashed)
            }
            Some(n) => {
                *n -= 1;
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// Called by devices before reads; a down node cannot read either.
    pub fn note_read(&self) -> StorageResult<()> {
        if self.inner.lock().unwrap().crashed {
            Err(StorageError::Crashed)
        } else {
            Ok(())
        }
    }

    /// Returns whether the node is currently down.
    pub fn is_crashed(&self) -> bool {
        self.inner.lock().unwrap().crashed
    }

    /// Restarts the node: clears the crashed flag. Volatile state above the
    /// device layer must be discarded by the caller; the media keep whatever
    /// the crash left behind.
    pub fn heal(&self) {
        self.inner.lock().unwrap().crashed = false;
    }

    /// Total crashes fired so far.
    pub fn crash_count(&self) -> u64 {
        self.inner.lock().unwrap().crash_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_never_fires() {
        let plan = FaultPlan::new();
        for _ in 0..1000 {
            plan.note_write().unwrap();
        }
        assert!(!plan.is_crashed());
    }

    #[test]
    fn countdown_fires_exactly_once_armed() {
        let plan = FaultPlan::new();
        plan.arm_after_writes(0);
        assert!(plan.note_write().is_err());
        assert_eq!(plan.crash_count(), 1);
        // Still down until healed.
        assert!(plan.note_write().is_err());
        assert_eq!(plan.crash_count(), 1);
    }

    #[test]
    fn reads_fail_while_down() {
        let plan = FaultPlan::new();
        plan.arm_after_writes(0);
        let _ = plan.note_write();
        assert!(plan.note_read().is_err());
        plan.heal();
        assert!(plan.note_read().is_ok());
    }

    #[test]
    fn disarm_cancels_pending_crash() {
        let plan = FaultPlan::new();
        plan.arm_after_writes(1);
        plan.disarm();
        for _ in 0..10 {
            plan.note_write().unwrap();
        }
    }

    #[test]
    fn clones_share_the_plan() {
        let plan = FaultPlan::new();
        let other = plan.clone();
        plan.arm_after_writes(0);
        assert!(other.note_write().is_err());
        assert!(plan.is_crashed());
    }
}
