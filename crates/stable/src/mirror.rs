//! The Lampson–Sturgis mirrored disk: atomic writes over fallible media.

use crate::store::SeqTracker;
use crate::{FaultPlan, Page, PageNo, PageStore, RawDisk, StorageError, StorageResult};
use argus_sim::{CostModel, DeviceStats, OpKind, SimClock};

/// Atomic stable storage built from two raw disks with independent failure
/// modes (§1.1, citing \[Lampson 79\]).
///
/// Every logical page has a copy on disk A and a copy on disk B. A write
/// updates A then B; a read prefers A and falls back to B, repairing the bad
/// copy. Because at most one copy can be mid-write at the instant of a crash,
/// every logical page stays readable as either its old or its new value —
/// the atomicity property the recovery algorithms rely on.
///
/// The struct separates durable from volatile state: the two [`RawDisk`]s
/// survive a simulated crash, and [`MirroredDisk::into_media`] /
/// [`MirroredDisk::from_media`] model the restart (new controller state over
/// the same platters).
#[derive(Debug)]
pub struct MirroredDisk {
    a: RawDisk,
    b: RawDisk,
    plan: FaultPlan,
    stats: DeviceStats,
    clock: SimClock,
    model: CostModel,
    tracker: SeqTracker,
    obs: MirrorObs,
}

/// Cached metric handles for one mirrored disk.
#[derive(Debug, Clone)]
struct MirrorObs {
    repairs: argus_obs::Counter,
    scrubs: argus_obs::Counter,
    reg: argus_obs::Registry,
}

impl MirrorObs {
    fn resolve() -> Self {
        let reg = argus_obs::current();
        Self {
            repairs: reg.counter("stable.mirror.repairs"),
            scrubs: reg.counter("stable.mirror.scrubs"),
            reg,
        }
    }

    fn repaired(&self, page: PageNo) {
        self.repairs.inc();
        self.reg.event(argus_obs::Event::MirrorRepair { page });
    }
}

impl MirroredDisk {
    /// Creates an empty mirrored disk.
    pub fn new(plan: FaultPlan, clock: SimClock, model: CostModel) -> Self {
        Self {
            a: RawDisk::new(),
            b: RawDisk::new(),
            plan,
            stats: DeviceStats::new(),
            clock,
            model,
            tracker: SeqTracker::default(),
            obs: MirrorObs::resolve(),
        }
    }

    /// Tears the disk down to its durable media (what survives a crash).
    pub fn into_media(self) -> (RawDisk, RawDisk) {
        (self.a, self.b)
    }

    /// Rebuilds a disk over surviving media after a restart.
    pub fn from_media(
        media: (RawDisk, RawDisk),
        plan: FaultPlan,
        clock: SimClock,
        model: CostModel,
    ) -> Self {
        Self {
            a: media.0,
            b: media.1,
            plan,
            stats: DeviceStats::new(),
            clock,
            model,
            tracker: SeqTracker::default(),
            obs: MirrorObs::resolve(),
        }
    }

    /// Test hook: decays the A copy of a page.
    pub fn decay_a(&mut self, pno: PageNo) {
        self.a.decay(pno);
    }

    /// Test hook: decays the B copy of a page.
    pub fn decay_b(&mut self, pno: PageNo) {
        self.b.decay(pno);
    }

    /// Scrub pass: re-reads every page, repairing single-copy decay, so that
    /// latent faults do not accumulate (the background task a real
    /// Lampson–Sturgis deployment runs periodically).
    pub fn scrub(&mut self) -> StorageResult<()> {
        self.obs.scrubs.inc();
        for pno in 0..self.page_count() {
            self.read_page(pno)?;
        }
        Ok(())
    }

    fn charge_write(&mut self, pno: PageNo) {
        let kind = if self.tracker.classify(pno) {
            OpKind::SeqWrite
        } else {
            OpKind::RandWrite
        };
        self.stats.charge(kind, &self.model, &self.clock);
    }

    fn charge_read(&mut self, pno: PageNo) {
        let kind = if self.tracker.classify(pno) {
            OpKind::SeqRead
        } else {
            OpKind::RandRead
        };
        self.stats.charge(kind, &self.model, &self.clock);
    }
}

impl PageStore for MirroredDisk {
    fn read_page(&mut self, pno: PageNo) -> StorageResult<Page> {
        self.plan.note_read()?;
        self.charge_read(pno);
        if pno >= self.page_count() {
            // Same contract as the other stores: unwritten pages read zero.
            return Ok(Page::zeroed());
        }
        match self.a.read(pno) {
            Ok(page) => {
                // Lazily repair a decayed B copy so the pair stays redundant.
                if !self.b.is_good(pno) && pno < self.b.page_count() {
                    self.b.repair(pno, &page);
                    self.obs.repaired(pno);
                }
                Ok(page)
            }
            Err(StorageError::BadPage { .. }) => {
                // A is bad; B must hold either the old or the new value.
                self.charge_read(pno);
                match self.b.read(pno) {
                    Ok(page) => {
                        self.a.repair(pno, &page);
                        self.obs.repaired(pno);
                        Ok(page)
                    }
                    Err(StorageError::BadPage { .. }) => {
                        Err(StorageError::BothCopiesBad { page: pno })
                    }
                    Err(e) => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }

    fn write_page(&mut self, pno: PageNo, page: &Page) -> StorageResult<()> {
        // Grow both copies first so a torn write cannot leave phantom holes.
        self.a.ensure_len(pno + 1);
        self.b.ensure_len(pno + 1);
        self.charge_write(pno);
        self.a.write(pno, page, &self.plan)?;
        self.charge_write(pno);
        self.b.write(pno, page, &self.plan)?;
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.a.page_count().max(self.b.page_count())
    }

    fn sync(&mut self) -> StorageResult<()> {
        self.plan.note_read()?;
        self.stats.charge(OpKind::Force, &self.model, &self.clock);
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> MirroredDisk {
        MirroredDisk::new(FaultPlan::new(), SimClock::new(), CostModel::fast())
    }

    #[test]
    fn roundtrip() {
        let mut d = disk();
        let p = Page::from_bytes(b"data");
        d.write_page(5, &p).unwrap();
        assert_eq!(d.read_page(5).unwrap(), p);
        assert_eq!(d.page_count(), 6);
    }

    #[test]
    fn reads_past_end_are_zero() {
        let mut d = disk();
        assert_eq!(d.read_page(5).unwrap(), Page::zeroed());
        assert_eq!(d.page_count(), 0);
    }

    #[test]
    fn survives_decay_of_either_copy() {
        let mut d = disk();
        let p = Page::from_bytes(b"keep me");
        d.write_page(0, &p).unwrap();
        d.decay_a(0);
        assert_eq!(d.read_page(0).unwrap(), p);
        // Read repaired A; now decay B and read again.
        d.decay_b(0);
        assert_eq!(d.read_page(0).unwrap(), p);
    }

    #[test]
    fn both_copies_bad_is_catastrophic() {
        let mut d = disk();
        d.write_page(0, &Page::from_bytes(b"x")).unwrap();
        d.decay_a(0);
        d.decay_b(0);
        assert!(matches!(
            d.read_page(0),
            Err(StorageError::BothCopiesBad { .. })
        ));
    }

    #[test]
    fn crash_mid_write_leaves_old_or_new_value() {
        // Crash on the first copy: page must still read as the OLD value.
        let plan = FaultPlan::new();
        let mut d = MirroredDisk::new(plan.clone(), SimClock::new(), CostModel::fast());
        let old = Page::from_bytes(b"old");
        let new = Page::from_bytes(b"new");
        d.write_page(0, &old).unwrap();
        plan.arm_after_writes(0);
        assert!(d.write_page(0, &new).unwrap_err().is_crash());
        plan.heal();
        let mut d = MirroredDisk::from_media(
            d.into_media(),
            plan.clone(),
            SimClock::new(),
            CostModel::fast(),
        );
        assert_eq!(d.read_page(0).unwrap(), old);

        // Crash on the second copy: page must read as the NEW value.
        plan.arm_after_writes(1);
        assert!(d.write_page(0, &new).unwrap_err().is_crash());
        plan.heal();
        let mut d =
            MirroredDisk::from_media(d.into_media(), plan, SimClock::new(), CostModel::fast());
        assert_eq!(d.read_page(0).unwrap(), new);
    }

    #[test]
    fn operations_fail_while_down() {
        let plan = FaultPlan::new();
        let mut d = MirroredDisk::new(plan.clone(), SimClock::new(), CostModel::fast());
        d.write_page(0, &Page::zeroed()).unwrap();
        plan.arm_after_writes(0);
        let _ = d.write_page(0, &Page::zeroed());
        assert!(d.read_page(0).unwrap_err().is_crash());
        assert!(d.sync().unwrap_err().is_crash());
    }

    #[test]
    fn scrub_repairs_latent_decay() {
        let mut d = disk();
        for pno in 0..8 {
            d.write_page(pno, &Page::from_bytes(&[pno as u8])).unwrap();
        }
        d.decay_a(3);
        d.decay_b(6);
        d.scrub().unwrap();
        // After the scrub both copies of every page are good again.
        d.decay_b(3); // kill the OTHER copy; page must still read via A
        assert_eq!(d.read_page(3).unwrap(), Page::from_bytes(&[3]));
    }

    #[test]
    fn stats_count_two_raw_writes_per_logical_write() {
        let mut d = disk();
        d.write_page(0, &Page::zeroed()).unwrap();
        assert_eq!(d.stats().snapshot().writes(), 2);
    }
}
