//! The Lampson–Sturgis mirrored disk: atomic writes over fallible media.

use crate::store::SeqTracker;
use crate::{FaultPlan, Page, PageNo, PageStore, RawDisk, StorageError, StorageResult};
use argus_sim::{CostModel, DeviceStats, OpKind, SimClock};

/// Atomic stable storage built from two raw disks with independent failure
/// modes (§1.1, citing \[Lampson 79\]).
///
/// Every logical page has a copy on disk A and a copy on disk B. A write
/// updates A then B; a read prefers A and falls back to B, repairing the bad
/// copy. Because at most one copy can be mid-write at the instant of a crash,
/// every logical page stays readable as either its old or its new value —
/// the atomicity property the recovery algorithms rely on.
///
/// The struct separates durable from volatile state: the two [`RawDisk`]s
/// survive a simulated crash, and [`MirroredDisk::into_media`] /
/// [`MirroredDisk::from_media`] model the restart (new controller state over
/// the same platters).
///
/// Accounting: [`MirroredDisk::stats`] counts each **logical** operation
/// once (so per-run metrics can compare organizations without mirrored legs
/// double-counting), while `busy_us` still accumulates the raw cost of both
/// legs. The raw per-leg operation tallies are reported separately by
/// [`MirroredDisk::leg_stats`].
#[derive(Debug)]
pub struct MirroredDisk {
    a: RawDisk,
    b: RawDisk,
    plan: FaultPlan,
    stats: DeviceStats,
    leg_a: DeviceStats,
    leg_b: DeviceStats,
    clock: SimClock,
    model: CostModel,
    tracker: SeqTracker,
    obs: MirrorObs,
}

/// Cached metric handles for one mirrored disk.
#[derive(Debug, Clone)]
struct MirrorObs {
    repairs: argus_obs::Counter,
    scrubs: argus_obs::Counter,
    reg: argus_obs::Registry,
}

impl MirrorObs {
    fn resolve() -> Self {
        let reg = argus_obs::current();
        Self {
            repairs: reg.counter("stable.mirror.repairs"),
            scrubs: reg.counter("stable.mirror.scrubs"),
            reg,
        }
    }

    fn repaired(&self, page: PageNo) {
        self.repairs.inc();
        self.reg.event(argus_obs::Event::MirrorRepair { page });
    }
}

impl MirroredDisk {
    /// Creates an empty mirrored disk.
    pub fn new(plan: FaultPlan, clock: SimClock, model: CostModel) -> Self {
        Self {
            a: RawDisk::new(),
            b: RawDisk::new(),
            plan,
            stats: DeviceStats::new(),
            leg_a: DeviceStats::new(),
            leg_b: DeviceStats::new(),
            clock,
            model,
            tracker: SeqTracker::default(),
            obs: MirrorObs::resolve(),
        }
    }

    /// Tears the disk down to its durable media (what survives a crash).
    pub fn into_media(self) -> (RawDisk, RawDisk) {
        (self.a, self.b)
    }

    /// Rebuilds a disk over surviving media after a restart.
    pub fn from_media(
        media: (RawDisk, RawDisk),
        plan: FaultPlan,
        clock: SimClock,
        model: CostModel,
    ) -> Self {
        Self {
            a: media.0,
            b: media.1,
            plan,
            stats: DeviceStats::new(),
            leg_a: DeviceStats::new(),
            leg_b: DeviceStats::new(),
            clock,
            model,
            tracker: SeqTracker::default(),
            obs: MirrorObs::resolve(),
        }
    }

    /// Test hook: decays the A copy of a page.
    pub fn decay_a(&mut self, pno: PageNo) {
        self.a.decay(pno);
    }

    /// Test hook: decays the B copy of a page.
    pub fn decay_b(&mut self, pno: PageNo) {
        self.b.decay(pno);
    }

    /// Scrub pass: re-reads every page, repairing single-copy decay, so that
    /// latent faults do not accumulate (the background task a real
    /// Lampson–Sturgis deployment runs periodically).
    pub fn scrub(&mut self) -> StorageResult<()> {
        self.obs.scrubs.inc();
        for pno in 0..self.page_count() {
            self.read_page(pno)?;
        }
        Ok(())
    }

    /// The raw per-leg operation tallies (disk A, disk B). Each leg counts
    /// its own physical operations; the logical [`MirroredDisk::stats`]
    /// counts each mirrored pair once.
    pub fn leg_stats(&self) -> (argus_sim::StatsSnapshot, argus_sim::StatsSnapshot) {
        (self.leg_a.snapshot(), self.leg_b.snapshot())
    }

    /// Charges a logical operation: counter + time on the primary leg, time
    /// only (plus the raw per-leg tally) on the secondary.
    fn charge_primary(&mut self, kind: OpKind, leg_a: bool) {
        self.stats.charge(kind, &self.model, &self.clock);
        let leg = if leg_a { &self.leg_a } else { &self.leg_b };
        leg.count(kind);
    }

    /// Charges the second raw operation of a mirrored pair: busy time and
    /// the per-leg tally, but no logical counter.
    fn charge_secondary(&mut self, kind: OpKind, leg_a: bool) {
        self.stats.add_busy(self.model.cost_of(kind), &self.clock);
        let leg = if leg_a { &self.leg_a } else { &self.leg_b };
        leg.count(kind);
    }

    fn classify_write(&mut self, pno: PageNo) -> OpKind {
        if self.tracker.classify(pno) {
            OpKind::SeqWrite
        } else {
            OpKind::RandWrite
        }
    }

    fn classify_read(&mut self, pno: PageNo) -> OpKind {
        if self.tracker.classify(pno) {
            OpKind::SeqRead
        } else {
            OpKind::RandRead
        }
    }
}

impl PageStore for MirroredDisk {
    fn read_page(&mut self, pno: PageNo) -> StorageResult<Page> {
        self.plan.note_read_at(pno)?;
        let kind = self.classify_read(pno);
        self.charge_primary(kind, true);
        if pno >= self.page_count() {
            // Same contract as the other stores: unwritten pages read zero.
            return Ok(Page::zeroed());
        }
        match self.a.read(pno) {
            Ok(page) => {
                // Lazily repair a decayed B copy so the pair stays redundant.
                // The repair is a real device write: a crash here tears B
                // again (A stays good) and fails this logical read.
                if !self.b.is_good(pno) && pno < self.b.page_count() {
                    self.b.repair(pno, &page, &self.plan)?;
                    self.obs.repaired(pno);
                }
                Ok(page)
            }
            Err(StorageError::BadPage { .. }) => {
                // A is bad; B must hold either the old or the new value. The
                // retry is raw work on the other leg, not a second logical
                // read.
                let kind = self.classify_read(pno);
                self.charge_secondary(kind, false);
                match self.b.read(pno) {
                    Ok(page) => {
                        self.a.repair(pno, &page, &self.plan)?;
                        self.obs.repaired(pno);
                        Ok(page)
                    }
                    Err(StorageError::BadPage { .. }) => {
                        Err(StorageError::BothCopiesBad { page: pno })
                    }
                    Err(e) => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }

    fn write_page(&mut self, pno: PageNo, page: &Page) -> StorageResult<()> {
        // Grow both copies first so a torn write cannot leave phantom holes.
        self.a.ensure_len(pno + 1);
        self.b.ensure_len(pno + 1);
        let kind = self.classify_write(pno);
        self.charge_primary(kind, true);
        self.a.write(pno, page, &self.plan)?;
        let kind = self.classify_write(pno);
        self.charge_secondary(kind, false);
        self.b.write(pno, page, &self.plan)?;
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.a.page_count().max(self.b.page_count())
    }

    fn sync(&mut self) -> StorageResult<()> {
        self.plan.note_force()?;
        // One logical barrier covers both legs (they share the spindle sync).
        self.stats.charge(OpKind::Force, &self.model, &self.clock);
        self.leg_a.count(OpKind::Force);
        self.leg_b.count(OpKind::Force);
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        self.stats.clone()
    }

    fn decay_page(&mut self, pno: PageNo) -> bool {
        if pno >= self.page_count() {
            return false;
        }
        // Lampson–Sturgis decay takes at most one copy of a pair before the
        // read path repairs it — never decay the last good copy (the twin
        // may already be torn by an in-flight crash).
        if pno < self.b.page_count() && self.b.is_good(pno) {
            self.a.decay(pno);
            true
        } else if pno < self.a.page_count() && self.a.is_good(pno) {
            self.b.decay(pno);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> MirroredDisk {
        MirroredDisk::new(FaultPlan::new(), SimClock::new(), CostModel::fast())
    }

    #[test]
    fn roundtrip() {
        let mut d = disk();
        let p = Page::from_bytes(b"data");
        d.write_page(5, &p).unwrap();
        assert_eq!(d.read_page(5).unwrap(), p);
        assert_eq!(d.page_count(), 6);
    }

    #[test]
    fn reads_past_end_are_zero() {
        let mut d = disk();
        assert_eq!(d.read_page(5).unwrap(), Page::zeroed());
        assert_eq!(d.page_count(), 0);
    }

    #[test]
    fn survives_decay_of_either_copy() {
        let mut d = disk();
        let p = Page::from_bytes(b"keep me");
        d.write_page(0, &p).unwrap();
        d.decay_a(0);
        assert_eq!(d.read_page(0).unwrap(), p);
        // Read repaired A; now decay B and read again.
        d.decay_b(0);
        assert_eq!(d.read_page(0).unwrap(), p);
    }

    #[test]
    fn both_copies_bad_is_catastrophic() {
        let mut d = disk();
        d.write_page(0, &Page::from_bytes(b"x")).unwrap();
        d.decay_a(0);
        d.decay_b(0);
        assert!(matches!(
            d.read_page(0),
            Err(StorageError::BothCopiesBad { .. })
        ));
    }

    #[test]
    fn crash_mid_write_leaves_old_or_new_value() {
        // Crash on the first copy: page must still read as the OLD value.
        let plan = FaultPlan::new();
        let mut d = MirroredDisk::new(plan.clone(), SimClock::new(), CostModel::fast());
        let old = Page::from_bytes(b"old");
        let new = Page::from_bytes(b"new");
        d.write_page(0, &old).unwrap();
        plan.arm_after_writes(0);
        assert!(d.write_page(0, &new).unwrap_err().is_crash());
        plan.heal();
        let mut d = MirroredDisk::from_media(
            d.into_media(),
            plan.clone(),
            SimClock::new(),
            CostModel::fast(),
        );
        assert_eq!(d.read_page(0).unwrap(), old);

        // Crash on the second copy: page must read as the NEW value.
        plan.arm_after_writes(1);
        assert!(d.write_page(0, &new).unwrap_err().is_crash());
        plan.heal();
        let mut d =
            MirroredDisk::from_media(d.into_media(), plan, SimClock::new(), CostModel::fast());
        assert_eq!(d.read_page(0).unwrap(), new);
    }

    #[test]
    fn crash_tears_at_most_one_leg() {
        // Sweep the crash through every write of a multi-page burst: at the
        // instant of the crash, at most one leg of one page may be torn, so
        // every logical page stays readable after the restart.
        for budget in 0..8 {
            let plan = FaultPlan::new();
            let mut d = MirroredDisk::new(plan.clone(), SimClock::new(), CostModel::fast());
            for pno in 0..4 {
                d.write_page(pno, &Page::from_bytes(&[0xAA, pno as u8]))
                    .unwrap();
            }
            plan.arm_after_writes(budget);
            let mut crashed = false;
            for pno in 0..4 {
                if d.write_page(pno, &Page::from_bytes(&[0xBB, pno as u8]))
                    .is_err()
                {
                    crashed = true;
                    break;
                }
            }
            assert!(crashed, "budget {budget} should crash inside the burst");
            plan.heal();
            let mut d =
                MirroredDisk::from_media(d.into_media(), plan, SimClock::new(), CostModel::fast());
            let mut torn_legs = 0;
            for pno in 0..4 {
                torn_legs += usize::from(!d.a.is_good(pno)) + usize::from(!d.b.is_good(pno));
                let got = d.read_page(pno).unwrap();
                let old = Page::from_bytes(&[0xAA, pno as u8]);
                let new = Page::from_bytes(&[0xBB, pno as u8]);
                assert!(got == old || got == new, "page {pno} read garbage");
            }
            assert!(torn_legs <= 1, "budget {budget} tore {torn_legs} legs");
        }
    }

    #[test]
    fn crash_mid_repair_tears_only_the_repaired_leg_and_heals_next_read() {
        let plan = FaultPlan::new();
        let mut d = MirroredDisk::new(plan.clone(), SimClock::new(), CostModel::fast());
        let p = Page::from_bytes(b"redundant");
        d.write_page(0, &p).unwrap();
        d.decay_b(0);
        // The lazy repair write itself crashes: the read fails, B stays torn,
        // A is untouched.
        plan.arm_after_writes(0);
        assert!(d.read_page(0).unwrap_err().is_crash());
        assert!(d.a.is_good(0));
        assert!(!d.b.is_good(0));
        plan.heal();
        // Next read-path visit finishes the repair.
        let mut d = MirroredDisk::from_media(
            d.into_media(),
            plan.clone(),
            SimClock::new(),
            CostModel::fast(),
        );
        assert_eq!(d.read_page(0).unwrap(), p);
        assert!(d.b.is_good(0));

        // Same story on the fallback path: A bad, repair-from-B crashes.
        d.decay_a(0);
        plan.arm_after_writes(0);
        assert!(d.read_page(0).unwrap_err().is_crash());
        assert!(!d.a.is_good(0));
        assert!(d.b.is_good(0));
        plan.heal();
        let mut d =
            MirroredDisk::from_media(d.into_media(), plan, SimClock::new(), CostModel::fast());
        assert_eq!(d.read_page(0).unwrap(), p);
        assert!(d.a.is_good(0));
    }

    #[test]
    fn decay_page_hook_decays_one_leg() {
        let mut d = disk();
        let p = Page::from_bytes(b"decay me");
        d.write_page(0, &p).unwrap();
        assert!(d.decay_page(0));
        assert!(!d.a.is_good(0));
        assert_eq!(d.read_page(0).unwrap(), p);
        assert!(d.a.is_good(0));
    }

    #[test]
    fn decay_never_takes_the_last_good_copy() {
        // Found by the crash-schedule sweeper: a crash mid-write tears one
        // leg; a frontier decay that then took the OTHER leg would destroy
        // both copies — a double failure the Lampson–Sturgis model excludes.
        let plan = FaultPlan::new();
        let mut d = MirroredDisk::new(plan.clone(), SimClock::new(), CostModel::fast());
        d.write_page(0, &Page::from_bytes(b"old")).unwrap();
        // Budget 1: the crash lands on the second raw write — leg B tears,
        // leg A already holds the new value.
        plan.arm_after_writes(1);
        assert!(d
            .write_page(0, &Page::from_bytes(b"new"))
            .unwrap_err()
            .is_crash());
        plan.heal();
        let mut d =
            MirroredDisk::from_media(d.into_media(), plan, SimClock::new(), CostModel::fast());
        assert!(!d.b.is_good(0));
        // Decay must land on the already-torn leg, never the last good copy.
        assert!(d.decay_page(0));
        assert!(d.a.is_good(0));
        assert_eq!(d.read_page(0).unwrap(), Page::from_bytes(b"new"));
        assert!(d.b.is_good(0), "the read repaired the torn leg");
    }

    #[test]
    fn operations_fail_while_down() {
        let plan = FaultPlan::new();
        let mut d = MirroredDisk::new(plan.clone(), SimClock::new(), CostModel::fast());
        d.write_page(0, &Page::zeroed()).unwrap();
        plan.arm_after_writes(0);
        let _ = d.write_page(0, &Page::zeroed());
        assert!(d.read_page(0).unwrap_err().is_crash());
        assert!(d.sync().unwrap_err().is_crash());
    }

    #[test]
    fn scrub_repairs_latent_decay() {
        let mut d = disk();
        for pno in 0..8 {
            d.write_page(pno, &Page::from_bytes(&[pno as u8])).unwrap();
        }
        d.decay_a(3);
        d.decay_b(6);
        d.scrub().unwrap();
        // After the scrub both copies of every page are good again.
        d.decay_b(3); // kill the OTHER copy; page must still read via A
        assert_eq!(d.read_page(3).unwrap(), Page::from_bytes(&[3]));
    }

    #[test]
    fn stats_count_one_logical_write_with_raw_legs_reported_separately() {
        let mut d = disk();
        d.write_page(0, &Page::zeroed()).unwrap();
        let s = d.stats().snapshot();
        // One logical write — mirrored legs no longer double-count…
        assert_eq!(s.writes(), 1);
        // …but the device was busy for both raw writes…
        assert_eq!(s.busy_us, 2 * CostModel::fast().seq_write_us);
        // …and each leg's raw tally is still visible.
        let (a, b) = d.leg_stats();
        assert_eq!(a.writes(), 1);
        assert_eq!(b.writes(), 1);
    }

    #[test]
    fn fallback_read_counts_one_logical_read() {
        let mut d = disk();
        let p = Page::from_bytes(b"x");
        d.write_page(0, &p).unwrap();
        let before = d.stats().snapshot();
        d.decay_a(0);
        assert_eq!(d.read_page(0).unwrap(), p);
        let delta = d.stats().snapshot().since(&before);
        // A-read failed, B-read repaired: still one logical read, with the
        // retry's time accounted and the raw read visible on leg B.
        assert_eq!(delta.reads(), 1);
        assert_eq!(delta.busy_us, 2 * CostModel::fast().seq_read_us);
        let (_, b) = d.leg_stats();
        assert_eq!(b.reads(), 1);
    }
}
