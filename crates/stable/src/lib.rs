//! Simulated atomic stable storage.
//!
//! The thesis *assumes* stable storage: "we assume that atomic stable storage
//! exists, has the right properties, and is available to use" (§1.1). It cites
//! Lampson & Sturgis's construction — mirror every logical page on two disks
//! with independent failure modes, write one copy then the other, and repair
//! on read.
//!
//! This crate supplies that substrate, simulated deterministically:
//!
//! * [`RawDisk`] — a fallible disk: pages can *decay* (spontaneously become
//!   unreadable) and a crash in the middle of a write *tears* the page.
//! * [`MirroredDisk`] — the Lampson–Sturgis pair over two raw disks. A crash
//!   at any point leaves every logical page readable as either its old or its
//!   new value — never garbage. Decayed copies are repaired from the twin on
//!   read.
//! * [`MemStore`] — an always-good page store for experiments where media
//!   faults are not under test (node crashes are injected above this layer).
//! * [`FileStore`] — the same interface persisted in a real file, so examples
//!   can survive actual process restarts.
//! * [`ByteDevice`] — a byte-addressed extent view over any [`PageStore`];
//!   the stable log in `argus-slog` is built on it.
//! * [`PageCache`] — a transparent LRU cache + read-ahead layer over any
//!   [`PageStore`], used to make recovery's log scans run at device speed.
//! * [`FaultPlan`] — the crash/decay injector shared by a device stack.
//!
//! All I/O charges simulated time against an [`argus_sim::SimClock`] through
//! [`argus_sim::DeviceStats`], so experiments can report device cost.

mod bytedev;
mod cache;
mod error;
mod fault;
mod file;
mod mem;
mod mirror;
mod page;
mod raw;
mod store;

pub use bytedev::ByteDevice;
pub use cache::{CacheConfig, PageCache};
pub use error::{StorageError, StorageResult};
pub use fault::{DeviceOp, FaultPlan, OpCounts, TraceEntry};
pub use file::{DurabilityMode, DurableFileStore, FileStore};
pub use mem::MemStore;
pub use mirror::MirroredDisk;
pub use page::{Page, PageNo, PAGE_SIZE};
pub use raw::RawDisk;
pub use store::PageStore;
