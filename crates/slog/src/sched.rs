//! Group-commit force scheduling.
//!
//! The thesis identifies the force — not the write — as the dominant
//! stable-storage cost (§3.2, §4.1): every `force_write` pays a device sync
//! whether it publishes one record or fifty. [`ForceScheduler`] is the
//! group-commit policy that lets concurrent actions share that sync: each
//! action *stages* its entry (a buffered [`crate::StableLog::write`]) and
//! notes it here; the owner of the log polls [`ForceScheduler::due`] and
//! issues one [`crate::StableLog::force`] for the whole batch once the batch
//! is full or the oldest staged entry has waited out the batch window.
//!
//! The scheduler is pure policy — it holds no log handle and does no I/O —
//! so the same instance can govern any log organization, and tests can
//! drive it with a bare clock value.

/// Tuning knobs for group commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForceConfig {
    /// Maximum simulated µs the oldest staged entry may wait before the
    /// batch is forced anyway.
    pub window_us: u64,
    /// Force as soon as this many entries are staged.
    pub max_batch: usize,
}

impl Default for ForceConfig {
    fn default() -> Self {
        Self {
            window_us: 1_000,
            max_batch: 64,
        }
    }
}

impl ForceConfig {
    /// Group commit disabled: every staged entry is due immediately, so the
    /// caller forces after each operation — the pre-batching behaviour.
    pub fn immediate() -> Self {
        Self {
            window_us: 0,
            max_batch: 1,
        }
    }

    /// Whether this configuration ever lets a batch grow beyond one entry.
    pub fn batches(&self) -> bool {
        self.max_batch > 1
    }
}

/// Tracks staged-but-unforced log entries and decides when the next shared
/// device force should happen. See the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct ForceScheduler {
    cfg: ForceConfig,
    pending: u64,
    /// Clock reading when the oldest pending entry was staged.
    opened_at: Option<u64>,
    /// Identity of the batch currently accumulating. Every staged entry
    /// belongs to the batch open when it was noted; the tracer uses the id
    /// to link each staged action's `force_wait` span to the one shared
    /// `force` span that published it.
    batch: u64,
}

impl ForceScheduler {
    /// Creates an idle scheduler with the given policy.
    pub fn new(cfg: ForceConfig) -> Self {
        Self {
            cfg,
            pending: 0,
            opened_at: None,
            batch: 0,
        }
    }

    /// The active policy.
    pub fn config(&self) -> ForceConfig {
        self.cfg
    }

    /// Records that one entry was staged at simulated time `now`; returns
    /// the id of the batch the entry joined.
    pub fn note_staged(&mut self, now: u64) -> u64 {
        if self.pending == 0 {
            self.opened_at = Some(now);
        }
        self.pending += 1;
        self.batch
    }

    /// The id of the batch currently accumulating (the one the next force
    /// will publish).
    pub fn batch_id(&self) -> u64 {
        self.batch
    }

    /// Number of staged entries awaiting the next force.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// The simulated time at which the open batch's window expires (the
    /// oldest staged entry's staging time plus the window), or `None` when
    /// nothing is staged. A full batch is due before its deadline — check
    /// [`ForceScheduler::due`] at staging time for that case.
    pub fn deadline(&self) -> Option<u64> {
        self.opened_at.map(|t| t + self.cfg.window_us)
    }

    /// Whether a force should be issued now: the batch is full, or the
    /// oldest staged entry has waited at least the window.
    pub fn due(&self, now: u64) -> bool {
        let Some(opened_at) = self.opened_at else {
            return false;
        };
        self.pending >= self.cfg.max_batch as u64
            || now.saturating_sub(opened_at) >= self.cfg.window_us
    }

    /// Resets after the caller forced the log (clears the pending batch and
    /// opens the next batch id).
    pub fn flushed(&mut self) {
        self.pending = 0;
        self.opened_at = None;
        self.batch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_scheduler_is_never_due() {
        let s = ForceScheduler::new(ForceConfig::default());
        assert!(!s.due(0));
        assert!(!s.due(u64::MAX));
    }

    #[test]
    fn immediate_config_is_due_at_once() {
        let mut s = ForceScheduler::new(ForceConfig::immediate());
        s.note_staged(100);
        assert!(s.due(100));
    }

    #[test]
    fn full_batch_is_due_regardless_of_time() {
        let mut s = ForceScheduler::new(ForceConfig {
            window_us: 1_000_000,
            max_batch: 3,
        });
        s.note_staged(0);
        s.note_staged(0);
        assert!(!s.due(0));
        s.note_staged(0);
        assert!(s.due(0));
    }

    #[test]
    fn window_expiry_makes_a_partial_batch_due() {
        let mut s = ForceScheduler::new(ForceConfig {
            window_us: 500,
            max_batch: 64,
        });
        s.note_staged(1_000);
        assert!(!s.due(1_499));
        assert!(s.due(1_500));
    }

    #[test]
    fn window_is_measured_from_the_oldest_entry() {
        let mut s = ForceScheduler::new(ForceConfig {
            window_us: 500,
            max_batch: 64,
        });
        s.note_staged(1_000);
        s.note_staged(1_400); // newer entry must not restart the window
        assert!(s.due(1_500));
    }

    #[test]
    fn flushed_resets_the_batch() {
        let mut s = ForceScheduler::new(ForceConfig {
            window_us: 500,
            max_batch: 2,
        });
        s.note_staged(0);
        s.note_staged(0);
        assert!(s.due(0));
        s.flushed();
        assert_eq!(s.pending(), 0);
        assert!(!s.due(u64::MAX));
    }

    #[test]
    fn deadline_tracks_the_oldest_entry() {
        let mut s = ForceScheduler::new(ForceConfig {
            window_us: 500,
            max_batch: 64,
        });
        assert_eq!(s.deadline(), None);
        s.note_staged(1_000);
        s.note_staged(1_400); // newer entry must not move the deadline
        assert_eq!(s.deadline(), Some(1_500));
        s.flushed();
        assert_eq!(s.deadline(), None);
    }

    #[test]
    fn batch_ids_advance_per_force() {
        let mut s = ForceScheduler::new(ForceConfig::default());
        assert_eq!(s.batch_id(), 0);
        assert_eq!(s.note_staged(0), 0);
        assert_eq!(s.note_staged(5), 0); // same batch until a force
        s.flushed();
        assert_eq!(s.batch_id(), 1);
        assert_eq!(s.note_staged(10), 1);
    }
}
