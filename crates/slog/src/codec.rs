//! A small, explicit binary codec.
//!
//! A log must own its on-media format, so records are encoded with this
//! hand-written, length-prefixed, little-endian codec rather than a
//! general-purpose serializer. Decoding is fully bounds-checked: corrupt
//! bytes produce [`CodecError`], never a panic.

use std::fmt;

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes remained than the read required.
    Truncated { needed: usize, remaining: usize },
    /// A tag byte had no defined meaning at this position.
    BadTag { tag: u8, context: &'static str },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(f, "truncated input: needed {needed} bytes, had {remaining}")
            }
            CodecError::BadTag { tag, context } => write!(f, "bad tag {tag:#04x} in {context}"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Result alias for decoding.
pub type CodecResult<T> = Result<T, CodecError>;

/// Appends primitive values to a growing byte buffer.
///
/// # Examples
///
/// ```
/// use argus_slog::{Decoder, Encoder};
///
/// let mut enc = Encoder::new();
/// enc.put_u64(7);
/// enc.put_str("argus");
/// let bytes = enc.finish();
///
/// let mut dec = Decoder::new(&bytes);
/// assert_eq!(dec.take_u64().unwrap(), 7);
/// assert_eq!(dec.take_str().unwrap(), "argus");
/// assert!(dec.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an encoder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Wraps an existing buffer, appending after its current contents —
    /// the reusable-arena constructor ([`crate::StableLog::write_with`]
    /// encodes records straight into the log's pending buffer with it,
    /// avoiding a per-record allocation).
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Self { buf }
    }

    /// Consumes the encoder, returning the underlying buffer (pair of
    /// [`Encoder::from_vec`]).
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// Mutable view of the encoded bytes (for backfilling placeholders).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends raw bytes with a `u32` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a string with a `u32` length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends raw bytes with no prefix (caller knows the length).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads primitive values from a byte slice, bounds-checked.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        let remaining = self.buf.len() - self.pos;
        if n > remaining {
            return Err(CodecError::Truncated {
                needed: n,
                remaining,
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> CodecResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> CodecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn take_i64(&mut self) -> CodecResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a boolean byte (`0` or `1`).
    pub fn take_bool(&mut self) -> CodecResult<bool> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag {
                tag,
                context: "bool",
            }),
        }
    }

    /// Reads `u32`-length-prefixed bytes.
    pub fn take_bytes(&mut self) -> CodecResult<&'a [u8]> {
        let len = self.take_u32()? as usize;
        self.take(len)
    }

    /// Reads `n` raw bytes with no prefix (pair of [`Encoder::put_raw`];
    /// the zero-copy record views slice fixed-stride arrays out with it).
    pub fn take_raw(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        self.take(n)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> CodecResult<&'a str> {
        std::str::from_utf8(self.take_bytes()?).map_err(|_| CodecError::BadUtf8)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

/// CRC-32 (IEEE 802.3 polynomial), table-driven.
///
/// Guards every log record against torn or decayed bytes that slip past the
/// page layer, and the superblock against a half-written root.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(1);
        e.put_u16(500);
        e.put_u32(70_000);
        e.put_u64(1 << 40);
        e.put_i64(-42);
        e.put_bool(true);
        e.put_bytes(b"bytes");
        e.put_str("string");
        let bytes = e.finish();

        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 1);
        assert_eq!(d.take_u16().unwrap(), 500);
        assert_eq!(d.take_u32().unwrap(), 70_000);
        assert_eq!(d.take_u64().unwrap(), 1 << 40);
        assert_eq!(d.take_i64().unwrap(), -42);
        assert!(d.take_bool().unwrap());
        assert_eq!(d.take_bytes().unwrap(), b"bytes");
        assert_eq!(d.take_str().unwrap(), "string");
        assert!(d.is_empty());
    }

    #[test]
    fn truncated_reads_error() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(matches!(d.take_u32(), Err(CodecError::Truncated { .. })));
        // Position does not advance past the end on failure.
        assert_eq!(d.take_u16().unwrap(), 0x0201);
    }

    #[test]
    fn bool_rejects_junk() {
        let mut d = Decoder::new(&[7]);
        assert!(matches!(
            d.take_bool(),
            Err(CodecError::BadTag { tag: 7, .. })
        ));
    }

    #[test]
    fn length_prefix_cannot_overread() {
        let mut e = Encoder::new();
        e.put_u32(1000); // claims 1000 bytes
        e.put_raw(b"short");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.take_bytes(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn bad_utf8_is_an_error() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xFF, 0xFE]);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_str(), Err(CodecError::BadUtf8));
    }

    #[test]
    fn crc32_known_vector() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_bit_flips() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
