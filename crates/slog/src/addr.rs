//! Log addresses.

use std::fmt;

/// The address of one entry in a stable log.
///
/// An address is the byte offset of the entry's frame header within the log
/// device. Addresses are strictly monotonic in append order, so comparing two
/// addresses orders the entries in time — the property the early-prepare
/// mutex rule (§4.4) depends on: "If the new address is less than the old
/// one, then the recovery system ignores the entry."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogAddress(pub u64);

impl LogAddress {
    /// The raw byte offset.
    pub fn offset(self) -> u64 {
        self.0
    }
}

impl fmt::Display for LogAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_offsets() {
        assert!(LogAddress(10) < LogAddress(20));
        assert_eq!(LogAddress(7).offset(), 7);
        assert_eq!(LogAddress(7).to_string(), "@7");
    }
}
