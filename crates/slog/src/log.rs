//! The stable log proper.

use crate::{crc32, CodecError, LogAddress};
use argus_stable::{ByteDevice, Page, PageStore, StorageError, PAGE_SIZE};
use std::fmt;

const SUPER_MAGIC: u64 = 0x4152_4755_534C_4F47; // "ARGUSLOG"
const REC_MAGIC: u32 = 0xA6_0C_5E_01;
const END_MAGIC: u32 = 0xA6_0C_5E_02;
const VERSION: u32 = 1;

/// First byte offset of record storage (the superblock owns page 0).
const DATA_START: u64 = PAGE_SIZE as u64;

/// Frame header: magic(4) + seq(8) + len(4) + crc(4).
const HEADER_LEN: u64 = 20;
/// Frame trailer: len(4) + end-magic(4); enables the backward walk.
const TRAILER_LEN: u64 = 8;

/// Errors surfaced by the log layer.
#[derive(Debug)]
pub enum LogError {
    /// Propagated device error (including the simulated crash).
    Storage(StorageError),
    /// Framing or checksum violation at the given byte offset.
    Corrupt { offset: u64, what: &'static str },
    /// The address does not name a forced record.
    BadAddress(LogAddress),
    /// The store holds no valid log superblock.
    NotALog,
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Storage(e) => write!(f, "storage: {e}"),
            LogError::Corrupt { offset, what } => write!(f, "corrupt log at {offset}: {what}"),
            LogError::BadAddress(a) => write!(f, "bad log address {a}"),
            LogError::NotALog => write!(f, "store does not contain a log"),
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for LogError {
    fn from(e: StorageError) -> Self {
        LogError::Storage(e)
    }
}

impl From<CodecError> for LogError {
    fn from(_: CodecError) -> Self {
        LogError::Corrupt {
            offset: 0,
            what: "undecodable superblock",
        }
    }
}

impl LogError {
    /// Whether this is the simulated node crash.
    pub fn is_crash(&self) -> bool {
        matches!(self, LogError::Storage(e) if e.is_crash())
    }
}

/// Result alias for log operations.
pub type LogResult<T> = Result<T, LogError>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Superblock {
    /// Byte offset one past the last forced record.
    tail: u64,
    /// Number of forced records.
    count: u64,
    /// Offset of the last forced record's header; `0` when the log is empty.
    last_record: u64,
}

impl Superblock {
    fn encode(&self) -> Page {
        let mut buf = [0u8; 40];
        buf[0..8].copy_from_slice(&SUPER_MAGIC.to_le_bytes());
        buf[8..12].copy_from_slice(&VERSION.to_le_bytes());
        buf[12..20].copy_from_slice(&self.tail.to_le_bytes());
        buf[20..28].copy_from_slice(&self.count.to_le_bytes());
        buf[28..36].copy_from_slice(&self.last_record.to_le_bytes());
        let crc = crc32(&buf[0..36]);
        buf[36..40].copy_from_slice(&crc.to_le_bytes());
        Page::from_bytes(&buf)
    }

    fn decode(page: &Page) -> LogResult<Self> {
        let buf = page.as_slice();
        let magic = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        if magic != SUPER_MAGIC {
            return Err(LogError::NotALog);
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(LogError::Corrupt {
                offset: 0,
                what: "unknown superblock version",
            });
        }
        let crc = u32::from_le_bytes(buf[36..40].try_into().unwrap());
        if crc != crc32(&buf[0..36]) {
            return Err(LogError::Corrupt {
                offset: 0,
                what: "superblock checksum",
            });
        }
        Ok(Self {
            tail: u64::from_le_bytes(buf[12..20].try_into().unwrap()),
            count: u64::from_le_bytes(buf[20..28].try_into().unwrap()),
            last_record: u64::from_le_bytes(buf[28..36].try_into().unwrap()),
        })
    }
}

/// A stable log over an atomic page store.
///
/// See the crate docs for the mapping to the thesis's interface. Entries are
/// opaque byte payloads here; `argus-core` defines their structure.
///
/// # Examples
///
/// ```
/// use argus_sim::{CostModel, SimClock};
/// use argus_slog::StableLog;
/// use argus_stable::MemStore;
///
/// let store = MemStore::new(SimClock::new(), CostModel::fast());
/// let mut log = StableLog::create(store)?;
///
/// let a = log.write(b"buffered");          // volatile until forced
/// let b = log.force_write(b"durable")?;    // forces a *and* b
/// assert_eq!(log.read(a)?.1, b"buffered");
/// assert_eq!(log.get_top(), Some(b));
///
/// // The backward walk visits newest-first — the recovery access pattern.
/// let walked: Vec<Vec<u8>> = log.read_backward(None).map(|r| r.unwrap().2).collect();
/// assert_eq!(walked, vec![b"durable".to_vec(), b"buffered".to_vec()]);
/// # Ok::<(), argus_slog::LogError>(())
/// ```
///
/// # Durability model
///
/// [`StableLog::write`] appends to a volatile buffer and *assigns the final
/// address immediately* (the hybrid writer needs data-entry addresses before
/// the force that makes them durable). [`StableLog::force`] writes the
/// buffered frames, syncs, then atomically publishes them by rewriting the
/// superblock. A crash at any intermediate point leaves the previous
/// superblock in place, so half-forced records are simply invisible — the
/// all-or-nothing force the thesis's two-phase commit relies on.
pub struct StableLog<S: PageStore> {
    dev: ByteDevice<S>,
    sb: Superblock,
    /// Serialized frames not yet forced.
    pending: Vec<u8>,
    /// Prefix of `pending` already written to the device by [`StableLog::flush`]
    /// (on media but not yet published by a superblock write).
    flushed: usize,
    /// Count of buffered frames and the address of the newest one.
    pending_count: u64,
    pending_last: u64,
    next_seq: u64,
    obs: SlogObs,
}

/// Cached metric handles for one log (resolved once from the scope's
/// registry so the append path stays a plain atomic bump).
#[derive(Debug, Clone)]
struct SlogObs {
    appends: argus_obs::Counter,
    append_bytes: argus_obs::Counter,
    flushes: argus_obs::Counter,
    forces: argus_obs::Counter,
    batch_size: argus_obs::Histogram,
    entry_reads: argus_obs::Counter,
    backward_hops: argus_obs::Counter,
    reg: argus_obs::Registry,
}

impl SlogObs {
    fn resolve() -> Self {
        let reg = argus_obs::current();
        Self {
            appends: reg.counter("slog.appends"),
            append_bytes: reg.counter("slog.append_bytes"),
            flushes: reg.counter("slog.flushes"),
            forces: reg.counter("slog.forces"),
            batch_size: reg.histogram("slog.force.batch_size"),
            entry_reads: reg.counter("slog.entry_reads"),
            backward_hops: reg.counter("slog.backward_hops"),
            reg,
        }
    }
}

impl<S: PageStore> fmt::Debug for StableLog<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StableLog")
            .field("tail", &self.sb.tail)
            .field("count", &self.sb.count)
            .field("pending_bytes", &self.pending.len())
            .finish()
    }
}

impl<S: PageStore> StableLog<S> {
    /// Formats a fresh, empty log onto `store` (the thesis's `create()`).
    pub fn create(store: S) -> LogResult<Self> {
        let mut dev = ByteDevice::new(store);
        let sb = Superblock {
            tail: DATA_START,
            count: 0,
            last_record: 0,
        };
        dev.store_mut().write_page(0, &sb.encode())?;
        dev.sync()?;
        Ok(Self {
            dev,
            sb,
            pending: Vec::new(),
            flushed: 0,
            pending_count: 0,
            pending_last: 0,
            next_seq: 0,
            obs: SlogObs::resolve(),
        })
    }

    /// Opens an existing log from `store`, e.g. after a crash. Buffered
    /// (unforced) entries from before the crash are gone, as they should be.
    pub fn open(store: S) -> LogResult<Self> {
        let mut dev = ByteDevice::new(store);
        // Whatever the store cached before the crash did not survive it.
        dev.store_mut().invalidate_volatile();
        let page = dev.store_mut().read_page(0)?;
        let sb = Superblock::decode(&page)?;
        Ok(Self {
            dev,
            sb,
            pending: Vec::new(),
            flushed: 0,
            pending_count: 0,
            pending_last: 0,
            next_seq: sb.count,
            obs: SlogObs::resolve(),
        })
    }

    /// Consumes the log, returning the underlying store (for crash
    /// simulation: extract the media, reopen later).
    pub fn into_store(self) -> S {
        self.dev.into_inner()
    }

    /// Simulates restart-in-place: discards all volatile state (the pending
    /// buffer and the tail-page cache) and re-reads the superblock from the
    /// surviving media. Equivalent to `open(self.into_store())` without
    /// moving the store.
    pub fn reopen(&mut self) -> LogResult<()> {
        self.pending.clear();
        self.flushed = 0;
        self.pending_count = 0;
        self.pending_last = 0;
        // Page caches under the device are volatile too: a restart starts
        // cold, exactly as the media would be after a real crash.
        self.dev.store_mut().invalidate_volatile();
        let page = self.dev.store_mut().read_page(0)?;
        self.sb = Superblock::decode(&page)?;
        self.next_seq = self.sb.count;
        Ok(())
    }

    /// Borrows the underlying store (for stats).
    pub fn store(&self) -> &S {
        self.dev.store()
    }

    /// Borrows the underlying store mutably — the fault-injection path for
    /// media decay ([`PageStore::decay_page`]); anything else should go
    /// through the log interface.
    pub fn store_mut(&mut self) -> &mut S {
        self.dev.store_mut()
    }

    /// Appends `payload` to the volatile buffer and returns the address the
    /// entry will have once forced.
    pub fn write(&mut self, payload: &[u8]) -> LogAddress {
        self.obs.appends.inc();
        self.obs.append_bytes.add(payload.len() as u64);
        let addr = self.sb.tail + self.pending.len() as u64;
        let seq = self.next_seq;
        self.next_seq += 1;
        let len = payload.len() as u32;
        self.pending.extend_from_slice(&REC_MAGIC.to_le_bytes());
        self.pending.extend_from_slice(&seq.to_le_bytes());
        self.pending.extend_from_slice(&len.to_le_bytes());
        self.pending
            .extend_from_slice(&crc32(payload).to_le_bytes());
        self.pending.extend_from_slice(payload);
        self.pending.extend_from_slice(&len.to_le_bytes());
        self.pending.extend_from_slice(&END_MAGIC.to_le_bytes());
        self.pending_count += 1;
        self.pending_last = addr;
        LogAddress(addr)
    }

    /// Like [`StableLog::write`], but the payload is encoded by `f`
    /// *directly into the pending buffer* — no intermediate per-record
    /// allocation. The frame header's length and checksum are backfilled
    /// once `f` returns; if `f` fails, the partial frame is rolled back and
    /// the log is unchanged.
    pub fn write_with<E>(
        &mut self,
        f: impl FnOnce(&mut crate::Encoder) -> Result<(), E>,
    ) -> Result<LogAddress, E> {
        let addr = self.sb.tail + self.pending.len() as u64;
        let base = self.pending.len();
        let mut enc = crate::Encoder::from_vec(std::mem::take(&mut self.pending));
        enc.put_raw(&REC_MAGIC.to_le_bytes());
        enc.put_raw(&self.next_seq.to_le_bytes());
        enc.put_raw(&[0u8; 8]); // len + crc, backfilled below
        let payload_start = enc.len();
        let result = f(&mut enc);
        let mut buf = enc.into_inner();
        if let Err(e) = result {
            buf.truncate(base);
            self.pending = buf;
            return Err(e);
        }
        let len = (buf.len() - payload_start) as u32;
        let crc = crc32(&buf[payload_start..]);
        buf[payload_start - 8..payload_start - 4].copy_from_slice(&len.to_le_bytes());
        buf[payload_start - 4..payload_start].copy_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&END_MAGIC.to_le_bytes());
        self.pending = buf;
        self.next_seq += 1;
        self.pending_count += 1;
        self.pending_last = addr;
        self.obs.appends.inc();
        self.obs.append_bytes.add(len as u64);
        Ok(LogAddress(addr))
    }

    /// Writes buffered frames to the device *without* publishing them: the
    /// background "free time" writing of early prepare (§4.4). Flushed
    /// entries are still invisible after a crash until a force publishes
    /// them via the superblock, so flushing is always safe.
    pub fn flush(&mut self) -> LogResult<()> {
        if self.flushed == self.pending.len() {
            return Ok(());
        }
        self.obs.flushes.inc();
        self.dev.write_at(
            self.sb.tail + self.flushed as u64,
            &self.pending[self.flushed..],
        )?;
        self.flushed = self.pending.len();
        Ok(())
    }

    /// Forces every buffered entry to stable storage before returning
    /// (the thesis's `force_write` barrier applied to the whole buffer).
    pub fn force(&mut self) -> LogResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let timer = self.obs.reg.phase("slog.force_us");
        let published = self.pending_count;
        self.flush()?;
        self.dev.sync()?;
        // Publication point: one atomic superblock write.
        let new_sb = Superblock {
            tail: self.sb.tail + self.pending.len() as u64,
            count: self.sb.count + self.pending_count,
            last_record: self.pending_last,
        };
        // Framing invariants the published superblock must satisfy: the tail
        // strictly advances, the record count grows with it, and the newest
        // record header lies inside the published region (I1 in the checker).
        debug_assert!(new_sb.tail > self.sb.tail);
        debug_assert!(new_sb.count == self.sb.count + self.pending_count);
        debug_assert!(
            new_sb.last_record >= self.sb.tail && new_sb.last_record < new_sb.tail,
            "last record header {} outside the newly published region {}..{}",
            new_sb.last_record,
            self.sb.tail,
            new_sb.tail
        );
        self.dev.store_mut().write_page(0, &new_sb.encode())?;
        self.dev.sync()?;
        self.sb = new_sb;
        self.pending.clear();
        self.flushed = 0;
        self.pending_count = 0;
        self.obs.forces.inc();
        self.obs.batch_size.record(published);
        self.obs.reg.event(argus_obs::Event::ForceCompleted {
            entries: published,
            stable_bytes: self.stable_bytes(),
        });
        timer.stop();
        Ok(())
    }

    /// `write` + `force`: the entry and all earlier buffered entries are
    /// durable when this returns.
    pub fn force_write(&mut self, payload: &[u8]) -> LogResult<LogAddress> {
        let addr = self.write(payload);
        self.force()?;
        Ok(addr)
    }

    /// Reads the forced entry at `addr`, returning `(sequence, payload)`.
    pub fn read(&mut self, addr: LogAddress) -> LogResult<(u64, Vec<u8>)> {
        let mut payload = Vec::new();
        let seq = self.read_into(addr, &mut payload)?;
        Ok((seq, payload))
    }

    /// Reads the forced entry at `addr` into `payload` (cleared first) and
    /// returns its sequence number. A caller walking many records reuses one
    /// scratch buffer instead of allocating per read — the recovery chain
    /// walk's allocation-free read path.
    pub fn read_into(&mut self, addr: LogAddress, payload: &mut Vec<u8>) -> LogResult<u64> {
        self.obs.entry_reads.inc();
        let off = addr.offset();
        if off < DATA_START || off + HEADER_LEN > self.sb.tail {
            return Err(LogError::BadAddress(addr));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        self.dev.read_at(off, &mut header)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        if magic != REC_MAGIC {
            return Err(LogError::Corrupt {
                offset: off,
                what: "record magic",
            });
        }
        let seq = u64::from_le_bytes(header[4..12].try_into().unwrap());
        let len = u32::from_le_bytes(header[12..16].try_into().unwrap()) as u64;
        let crc = u32::from_le_bytes(header[16..20].try_into().unwrap());
        if off + HEADER_LEN + len + TRAILER_LEN > self.sb.tail {
            return Err(LogError::Corrupt {
                offset: off,
                what: "record length",
            });
        }
        payload.clear();
        payload.resize(len as usize, 0);
        self.dev.read_at(off + HEADER_LEN, payload)?;
        if crc32(payload) != crc {
            return Err(LogError::Corrupt {
                offset: off,
                what: "record checksum",
            });
        }
        Ok(seq)
    }

    /// Address of the last forced entry (the thesis's `get_top`), or `None`
    /// for an empty log.
    pub fn get_top(&self) -> Option<LogAddress> {
        if self.sb.count == 0 {
            None
        } else {
            Some(LogAddress(self.sb.last_record))
        }
    }

    /// Returns an iterator reading the log backwards, one entry at a time,
    /// starting at `from` (or at the top when `from` is `None`).
    pub fn read_backward(&mut self, from: Option<LogAddress>) -> BackwardIter<'_, S> {
        let cursor = from.or(self.get_top());
        BackwardIter { log: self, cursor }
    }

    /// Number of forced entries.
    pub fn stable_count(&self) -> u64 {
        self.sb.count
    }

    /// Number of buffered, not-yet-forced entries.
    pub fn pending_count(&self) -> u64 {
        self.pending_count
    }

    /// Bytes of forced log content (excluding the superblock page).
    pub fn stable_bytes(&self) -> u64 {
        self.sb.tail - DATA_START
    }

    /// Given a forced record's address, returns the address of the record
    /// preceding it, or `None` at the beginning of the log.
    fn prev_record(&mut self, addr: LogAddress) -> LogResult<Option<LogAddress>> {
        let off = addr.offset();
        if off == DATA_START {
            return Ok(None);
        }
        if off < DATA_START + HEADER_LEN + TRAILER_LEN {
            return Err(LogError::Corrupt {
                offset: off,
                what: "impossible record offset",
            });
        }
        let mut trailer = [0u8; TRAILER_LEN as usize];
        self.dev.read_at(off - TRAILER_LEN, &mut trailer)?;
        let len = u32::from_le_bytes(trailer[0..4].try_into().unwrap()) as u64;
        let magic = u32::from_le_bytes(trailer[4..8].try_into().unwrap());
        if magic != END_MAGIC {
            return Err(LogError::Corrupt {
                offset: off - TRAILER_LEN,
                what: "trailer magic",
            });
        }
        let total = HEADER_LEN + len + TRAILER_LEN;
        if off < DATA_START + total {
            return Err(LogError::Corrupt {
                offset: off,
                what: "trailer length",
            });
        }
        Ok(Some(LogAddress(off - total)))
    }
}

/// Iterator over `(address, sequence, payload)` walking the log backwards.
///
/// Yields the entry at the starting address first, then each predecessor —
/// the access pattern of every recovery algorithm in the thesis.
pub struct BackwardIter<'a, S: PageStore> {
    log: &'a mut StableLog<S>,
    cursor: Option<LogAddress>,
}

impl<S: PageStore> Iterator for BackwardIter<'_, S> {
    type Item = LogResult<(LogAddress, u64, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        let addr = self.cursor?;
        self.log.obs.backward_hops.inc();
        match self.log.read(addr) {
            Ok((seq, payload)) => {
                match self.log.prev_record(addr) {
                    Ok(prev) => self.cursor = prev,
                    Err(e) => {
                        self.cursor = None;
                        return Some(Err(e));
                    }
                }
                Some(Ok((addr, seq, payload)))
            }
            Err(e) => {
                self.cursor = None;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_sim::{CostModel, SimClock};
    use argus_stable::{FaultPlan, MemStore};

    fn mem() -> MemStore {
        MemStore::new(SimClock::new(), CostModel::fast())
    }

    fn new_log() -> StableLog<MemStore> {
        StableLog::create(mem()).unwrap()
    }

    #[test]
    fn force_write_then_read_roundtrips() {
        let mut log = new_log();
        let a = log.force_write(b"first").unwrap();
        let b = log.force_write(b"second").unwrap();
        assert!(a < b);
        assert_eq!(log.read(a).unwrap(), (0, b"first".to_vec()));
        assert_eq!(log.read(b).unwrap(), (1, b"second".to_vec()));
        assert_eq!(log.get_top(), Some(b));
        assert_eq!(log.stable_count(), 2);
    }

    #[test]
    fn write_assigns_final_addresses_before_force() {
        let mut log = new_log();
        let a = log.write(b"one");
        let b = log.write(b"two");
        assert!(a < b);
        assert_eq!(log.pending_count(), 2);
        // Unforced entries are not readable.
        assert!(matches!(log.read(a), Err(LogError::BadAddress(_))));
        log.force().unwrap();
        assert_eq!(log.read(a).unwrap().1, b"one");
        assert_eq!(log.read(b).unwrap().1, b"two");
    }

    #[test]
    fn force_flushes_all_older_buffered_entries() {
        let mut log = new_log();
        log.write(b"buffered-1");
        log.write(b"buffered-2");
        let c = log.force_write(b"forced").unwrap();
        assert_eq!(log.stable_count(), 3);
        assert_eq!(log.get_top(), Some(c));
    }

    #[test]
    fn backward_iteration_order() {
        let mut log = new_log();
        for i in 0..5u8 {
            log.force_write(&[i]).unwrap();
        }
        let got: Vec<Vec<u8>> = log.read_backward(None).map(|r| r.unwrap().2).collect();
        assert_eq!(got, vec![vec![4], vec![3], vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn backward_iteration_from_middle() {
        let mut log = new_log();
        let addrs: Vec<_> = (0..5u8).map(|i| log.force_write(&[i]).unwrap()).collect();
        let got: Vec<Vec<u8>> = log
            .read_backward(Some(addrs[2]))
            .map(|r| r.unwrap().2)
            .collect();
        assert_eq!(got, vec![vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn empty_log_iterates_nothing() {
        let mut log = new_log();
        assert_eq!(log.get_top(), None);
        assert!(log.read_backward(None).next().is_none());
    }

    #[test]
    fn reopen_preserves_forced_entries() {
        let mut log = new_log();
        let a = log.force_write(b"durable").unwrap();
        log.write(b"volatile"); // never forced
        let store = log.into_store();
        let mut log = StableLog::open(store).unwrap();
        assert_eq!(log.stable_count(), 1);
        assert_eq!(log.read(a).unwrap().1, b"durable");
        // New writes continue with fresh sequence numbers after the survivors.
        let b = log.force_write(b"after").unwrap();
        assert_eq!(log.read(b).unwrap().0, 1);
    }

    #[test]
    fn crash_discards_buffered_but_keeps_forced() {
        let plan = FaultPlan::new();
        let store = MemStore::with_fault_plan(plan.clone(), SimClock::new(), CostModel::fast());
        let mut log = StableLog::create(store).unwrap();
        log.force_write(b"safe").unwrap();
        log.write(b"lost");
        plan.arm_after_writes(0);
        assert!(log.force().unwrap_err().is_crash());
        plan.heal();
        let mut log = StableLog::open(log.into_store()).unwrap();
        assert_eq!(log.stable_count(), 1);
        let tops: Vec<_> = log.read_backward(None).map(|r| r.unwrap().2).collect();
        assert_eq!(tops, vec![b"safe".to_vec()]);
    }

    #[test]
    fn crash_before_superblock_publish_hides_the_force() {
        // Arm the crash so the record bytes land but the superblock write
        // tears: the entry must be invisible after recovery.
        let plan = FaultPlan::new();
        let store = MemStore::with_fault_plan(plan.clone(), SimClock::new(), CostModel::fast());
        let mut log = StableLog::create(store).unwrap();
        log.force_write(b"entry-0").unwrap();
        log.write(b"entry-1");
        // The force will write 1 data page then the superblock page; allow
        // exactly the data page.
        plan.arm_after_writes(1);
        assert!(log.force().unwrap_err().is_crash());
        plan.heal();
        let mut log = StableLog::open(log.into_store()).unwrap();
        assert_eq!(log.stable_count(), 1);
        assert_eq!(
            log.read_backward(None)
                .map(|r| r.unwrap().2)
                .collect::<Vec<_>>(),
            vec![b"entry-0".to_vec()]
        );
        // And the log remains appendable.
        log.force_write(b"entry-2").unwrap();
        assert_eq!(log.stable_count(), 2);
    }

    #[test]
    fn large_entries_span_pages() {
        let mut log = new_log();
        let big: Vec<u8> = (0..10_000).map(|i| (i % 253) as u8).collect();
        let a = log.force_write(&big).unwrap();
        let small = log.force_write(b"tail").unwrap();
        assert_eq!(log.read(a).unwrap().1, big);
        let got: Vec<_> = log.read_backward(None).map(|r| r.unwrap().0).collect();
        assert_eq!(got, vec![small, a]);
    }

    #[test]
    fn write_with_is_equivalent_to_write() {
        let mut log = new_log();
        let a = log.write(b"classic");
        let b: LogAddress = log
            .write_with(|enc| {
                enc.put_raw(b"arena");
                Ok::<(), ()>(())
            })
            .unwrap();
        log.force().unwrap();
        assert_eq!(log.read(a).unwrap(), (0, b"classic".to_vec()));
        assert_eq!(log.read(b).unwrap(), (1, b"arena".to_vec()));
        // The backward walk crosses both framings.
        let got: Vec<Vec<u8>> = log.read_backward(None).map(|r| r.unwrap().2).collect();
        assert_eq!(got, vec![b"arena".to_vec(), b"classic".to_vec()]);
    }

    #[test]
    fn write_with_failure_rolls_the_frame_back() {
        let mut log = new_log();
        let a = log.write(b"kept");
        let err = log.write_with(|enc| {
            enc.put_raw(b"partial garbage");
            Err::<(), &str>("encode failed")
        });
        assert_eq!(err.unwrap_err(), "encode failed");
        assert_eq!(log.pending_count(), 1);
        let b = log.force_write(b"after").unwrap();
        assert_eq!(log.read(a).unwrap().1, b"kept");
        assert_eq!(log.read(b).unwrap().1, b"after");
        assert_eq!(log.stable_count(), 2);
    }

    #[test]
    fn read_into_reuses_the_buffer() {
        let mut log = new_log();
        let a = log.force_write(b"a longer first record").unwrap();
        let b = log.force_write(b"b").unwrap();
        let mut buf = Vec::new();
        assert_eq!(log.read_into(a, &mut buf).unwrap(), 0);
        assert_eq!(buf, b"a longer first record");
        assert_eq!(log.read_into(b, &mut buf).unwrap(), 1);
        assert_eq!(buf, b"b");
    }

    #[test]
    fn open_rejects_a_non_log() {
        let mut store = mem();
        store.write_page(0, &Page::from_bytes(b"garbage")).unwrap();
        assert!(matches!(StableLog::open(store), Err(LogError::NotALog)));
    }

    #[test]
    fn read_rejects_junk_addresses() {
        let mut log = new_log();
        log.force_write(b"x").unwrap();
        assert!(matches!(
            log.read(LogAddress(3)),
            Err(LogError::BadAddress(_))
        ));
        assert!(matches!(
            log.read(LogAddress(DATA_START + 7)),
            Err(LogError::Corrupt { .. }) | Err(LogError::BadAddress(_))
        ));
    }
}
