//! The stable log abstraction (§3.1 of the thesis).
//!
//! > "We postulate the existence of a stable storage system that provides
//! > objects that look like stable logs and behave like stable logs."
//!
//! This crate is that stable-log object, built over the atomic page stores of
//! `argus-stable`. It provides exactly the thesis's interface \[Raible 83\]:
//!
//! | thesis operation             | here                                   |
//! |------------------------------|----------------------------------------|
//! | `write(log, entry)`          | [`StableLog::write`]                   |
//! | `force_write(log, entry)`    | [`StableLog::force_write`]             |
//! | `read(log, log_address)`     | [`StableLog::read`]                    |
//! | `read_backward(log, addr)`   | [`StableLog::read_backward`]           |
//! | `get_top(log)`               | [`StableLog::get_top`]                 |
//! | `create()`                   | [`StableLog::create`]                  |
//! | `destroy(log)`               | dropping / replacing via [`LogRoot`]   |
//!
//! Semantics preserved from the thesis:
//!
//! * `write` buffers; "the actual writing of the data to the stable storage
//!   device may not have happened when this operation returns". A crash
//!   discards buffered entries.
//! * `force_write` makes the entry *and every earlier buffered entry*
//!   durable before returning.
//! * Entries are addressed by [`LogAddress`]; addresses are monotonically
//!   increasing, which the hybrid log's mutex-recency rule (§4.4) relies on.
//!
//! Records are framed with a CRC32 and a trailer that allows walking the log
//! backwards, and a superblock on page 0 is atomically rewritten at each
//! force — the commit point that makes a multi-page force all-or-nothing.
//! [`LogRoot`] provides the "new log supplants the old log in one atomic
//! step" needed by housekeeping (ch. 5).

mod addr;
mod codec;
mod log;
mod root;
mod sched;

pub use addr::LogAddress;
pub use codec::{crc32, CodecError, CodecResult, Decoder, Encoder};
pub use log::{BackwardIter, LogError, LogResult, StableLog};
pub use root::LogRoot;
pub use sched::{ForceConfig, ForceScheduler};
