//! The log root: one atomic pointer to the active log.
//!
//! Housekeeping (ch. 5) ends with "in one atomic step, the new log supplants
//! the old log". [`LogRoot`] is that step: a single stable page naming the
//! active log generation, rewritten atomically.

use crate::{crc32, LogError, LogResult};
use argus_stable::{Page, PageStore};

const ROOT_MAGIC: u64 = 0x4152_4755_524F_4F54; // "ARGUROOT"

/// A stable cell holding the identifier of a guardian's active log.
#[derive(Debug)]
pub struct LogRoot<S: PageStore> {
    store: S,
}

impl<S: PageStore> LogRoot<S> {
    /// Formats a fresh root pointing at log generation `initial`.
    pub fn create(store: S, initial: u64) -> LogResult<Self> {
        let mut root = Self { store };
        root.switch(initial)?;
        Ok(root)
    }

    /// Opens an existing root.
    pub fn open(store: S) -> LogResult<Self> {
        let mut root = Self { store };
        root.active()?; // validate
        Ok(root)
    }

    /// Returns the active log generation.
    pub fn active(&mut self) -> LogResult<u64> {
        let page = self.store.read_page(0)?;
        let buf = page.as_slice();
        let magic = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        if magic != ROOT_MAGIC {
            return Err(LogError::NotALog);
        }
        let id = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[16..20].try_into().unwrap());
        if crc != crc32(&buf[0..16]) {
            return Err(LogError::Corrupt {
                offset: 0,
                what: "root checksum",
            });
        }
        Ok(id)
    }

    /// Atomically repoints the root at log generation `id` — the single
    /// atomic step that retires an old log.
    pub fn switch(&mut self, id: u64) -> LogResult<()> {
        let mut buf = [0u8; 20];
        buf[0..8].copy_from_slice(&ROOT_MAGIC.to_le_bytes());
        buf[8..16].copy_from_slice(&id.to_le_bytes());
        let crc = crc32(&buf[0..16]);
        buf[16..20].copy_from_slice(&crc.to_le_bytes());
        self.store.write_page(0, &Page::from_bytes(&buf))?;
        self.store.sync()?;
        Ok(())
    }

    /// Consumes the root, returning its store (crash simulation).
    pub fn into_store(self) -> S {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_sim::{CostModel, SimClock};
    use argus_stable::MemStore;

    fn mem() -> MemStore {
        MemStore::new(SimClock::new(), CostModel::fast())
    }

    #[test]
    fn create_then_read() {
        let mut root = LogRoot::create(mem(), 1).unwrap();
        assert_eq!(root.active().unwrap(), 1);
    }

    #[test]
    fn switch_is_visible_after_reopen() {
        let mut root = LogRoot::create(mem(), 1).unwrap();
        root.switch(2).unwrap();
        let mut root = LogRoot::open(root.into_store()).unwrap();
        assert_eq!(root.active().unwrap(), 2);
    }

    #[test]
    fn open_rejects_garbage() {
        let mut store = mem();
        store
            .write_page(0, &Page::from_bytes(b"not a root"))
            .unwrap();
        assert!(LogRoot::open(store).is_err());
    }
}
