//! The VOPR: a seeded randomized fault-composition explorer.
//!
//! The sweeper in [`crate::sweep`] exhausts crash schedules over a perfect
//! FIFO network; this module attacks from the other side, in the style of
//! the TigerBeetle/kimberlite "viewstamped operation replicator" simulators:
//! one `u64` seed drives a weighted random walk that *composes* every fault
//! the simulated world knows — message drop, duplication, and reorder/delay
//! (the [`argus_guardian::NetFaults`] injector), network partitions with
//! scheduled heals, guardian pauses (the node sleeps while the shared clock
//! runs on — clock skew), media decay on mirrored stores, and crashes with
//! recovery, both explicit and armed to fire mid-protocol — against a
//! multi-guardian two-phase-commit workload.
//!
//! Standing invariants run at every quiesce point (every
//! [`VoprConfig::check_every`] steps, the world is driven to quiescence and
//! checked):
//!
//! * **I1–I10** per up guardian's log ([`crate::lint_log`]);
//! * **I11** heap quiescence against the world's live-action set
//!   ([`crate::lint_heap_quiesced`]);
//! * **I12** trace structural consistency ([`crate::lint_trace`]);
//! * **aborted invisibility** — an aborted action's writes must never be
//!   visible, at any time.
//!
//! The *full* legal-outcomes oracle (committed ⇒ durable everywhere,
//! in-doubt ⇒ either but atomic — the sweeper's oracle) is deferred to the
//! terminal phase: mid-run, a partition may legitimately be holding the
//! very Commit message a participant needs. The terminal phase lifts every
//! fault — heals partitions, resumes pauses, disarms plans, restarts the
//! down — drains to quiescence, re-queries in-doubt participants, and then
//! holds the final state to the oracle. That final settle is exactly the
//! §2.2 liveness assumption ("eventually any two nodes can communicate"),
//! so 2PC termination stays assertable under arbitrary fault composition.
//!
//! **Replay contract**: everything is driven by one [`DetRng`] seeded from
//! [`VoprConfig::seed`]; the same seed reproduces the same fault schedule,
//! the same invariant results, and a byte-identical summary line. On any
//! violation the full schedule is dumped through the
//! [`argus_trace::flight`] recorder (schedule text + Chrome trace), and
//! `argus-lint vopr --seed N --iterations M` replays it exactly.

use crate::obs::VoprObs;
use crate::{lint_heap_quiesced, lint_log, LogImage};
use argus_core::HousekeepingMode;
use argus_guardian::{MediaKind, NetFaults, Outcome, RsKind, World, WorldConfig};
use argus_objects::{GuardianId, Value};
use argus_sim::{CostModel, DetRng};

/// One explorer run's shape: the seed pins everything else down.
#[derive(Debug, Clone, Copy)]
pub struct VoprConfig {
    /// The seed: same seed, same run, byte for byte.
    pub seed: u64,
    /// Explorer steps (the `--iterations` of the CLI).
    pub steps: u64,
    /// The recovery organization under test.
    pub kind: RsKind,
    /// Guardians in the world (at least 2).
    pub guardians: u32,
    /// Quiesce-and-check cadence in steps.
    pub check_every: u64,
    /// Self-test hook: inject one deliberately-false committed expectation
    /// into the oracle, so the run *must* find a violation — proving the
    /// detection, replay, and flight-dump path end to end.
    pub break_oracle: bool,
}

impl VoprConfig {
    /// The default shape: 3 hybrid guardians, checks every 8 steps.
    pub fn new(seed: u64, steps: u64) -> Self {
        Self {
            seed,
            steps,
            kind: RsKind::Hybrid,
            guardians: 3,
            check_every: 8,
            break_oracle: false,
        }
    }
}

/// Per-kind injected-fault counts for one run (or a batch, via
/// [`FaultTally::absorb`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Messages lost by the injector.
    pub drops: u64,
    /// Duplicate deliveries.
    pub duplicates: u64,
    /// Deferrals (reorderings).
    pub defers: u64,
    /// Partitions opened.
    pub partitions: u64,
    /// Partitions healed (scheduled or early).
    pub heals: u64,
    /// Guardian pauses.
    pub pauses: u64,
    /// Clock-skew advances.
    pub skews: u64,
    /// Mirror pages decayed.
    pub decays: u64,
    /// Crashes (explicit and armed-that-fired).
    pub crashes: u64,
    /// Restarts driven.
    pub restarts: u64,
}

impl FaultTally {
    /// Adds another tally into this one (batch aggregation).
    pub fn absorb(&mut self, o: &FaultTally) {
        self.drops += o.drops;
        self.duplicates += o.duplicates;
        self.defers += o.defers;
        self.partitions += o.partitions;
        self.heals += o.heals;
        self.pauses += o.pauses;
        self.skews += o.skews;
        self.decays += o.decays;
        self.crashes += o.crashes;
        self.restarts += o.restarts;
    }

    /// Total faults injected, all kinds.
    pub fn total(&self) -> u64 {
        self.drops
            + self.duplicates
            + self.defers
            + self.partitions
            + self.heals
            + self.pauses
            + self.skews
            + self.decays
            + self.crashes
            + self.restarts
    }

    /// Whether every fault kind fired at least once — the smoke batch's
    /// composition proof.
    pub fn all_kinds_fired(&self) -> bool {
        self.drops > 0
            && self.duplicates > 0
            && self.defers > 0
            && self.partitions > 0
            && self.heals > 0
            && self.pauses > 0
            && self.skews > 0
            && self.decays > 0
            && self.crashes > 0
            && self.restarts > 0
    }
}

impl std::fmt::Display for FaultTally {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drop={} dup={} defer={} part={} heal={} pause={} skew={} decay={} crash={} restart={}",
            self.drops,
            self.duplicates,
            self.defers,
            self.partitions,
            self.heals,
            self.pauses,
            self.skews,
            self.decays,
            self.crashes,
            self.restarts,
        )
    }
}

/// One run's deterministic result. [`VoprSummary::line`] is the replay
/// artifact: byte-identical across runs of the same seed.
#[derive(Debug, Clone)]
pub struct VoprSummary {
    /// The seed that reproduces this run.
    pub seed: u64,
    /// Steps executed.
    pub steps: u64,
    /// Workload actions driven to a fate.
    pub actions: u64,
    /// Actions whose commit was acknowledged.
    pub committed: u64,
    /// Actions aborted (client aborts, conflicts, give-ups).
    pub aborted: u64,
    /// Actions left in doubt by a fault mid-protocol.
    pub in_doubt: u64,
    /// Quiesce-point invariant checks run (mid-run + terminal) — the
    /// "states explored" of experiment E17.
    pub checks: u64,
    /// Faults injected, by kind.
    pub faults: FaultTally,
    /// Simulated time consumed, in microseconds.
    pub sim_us: u64,
    /// Every invariant or oracle violation found, in discovery order.
    pub violations: Vec<String>,
    /// Flight-recorder dump paths (schedule text, then Chrome trace) when
    /// the run found violations. Excluded from [`VoprSummary::line`]: the
    /// recorder never overwrites, so paths vary across replays.
    pub flight: Vec<String>,
}

impl VoprSummary {
    /// Whether the run found no violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The one-line deterministic summary: the byte-for-byte replay
    /// artifact for a seed.
    pub fn line(&self) -> String {
        format!(
            "seed {}: {} steps, {} actions ({}c/{}a/{}d), {} checks, faults[{}], sim {}us: {}",
            self.seed,
            self.steps,
            self.actions,
            self.committed,
            self.aborted,
            self.in_doubt,
            self.checks,
            self.faults,
            self.sim_us,
            if self.is_clean() {
                "clean".to_owned()
            } else {
                format!("{} VIOLATIONS", self.violations.len())
            }
        )
    }

    /// Panics with every violation (and the flight dump paths) when the
    /// run is not clean.
    #[track_caller]
    pub fn assert_clean(&self) {
        if !self.is_clean() {
            let mut msg = format!("{}\n", self.line());
            for v in &self.violations {
                msg.push_str(&format!("  {v}\n"));
            }
            for p in &self.flight {
                msg.push_str(&format!("  flight: {p}\n"));
            }
            panic!("{msg}");
        }
    }
}

impl std::fmt::Display for VoprSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.line())?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

/// The client-observed fate of one workload action (the sweeper's oracle
/// vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Committed,
    Aborted,
    InDoubt,
}

/// One workload action's writes and observed fate. Variables are unique per
/// action, so visibility is unambiguous.
#[derive(Debug, Clone)]
struct Rec {
    writes: Vec<(GuardianId, String, i64)>,
    fate: Fate,
}

/// Mutable book-keeping for one run, separate from the [`World`] so helper
/// methods can borrow both halves.
struct Run {
    rng: DetRng,
    gids: Vec<GuardianId>,
    records: Vec<Rec>,
    schedule: Vec<String>,
    violations: Vec<String>,
    tally: FaultTally,
    /// Active partitions: guardian indices and the step that heals them.
    partitions: Vec<(usize, usize, u64)>,
    /// Paused guardians: index and the step that resumes them.
    paused: Vec<(usize, u64)>,
    /// Down guardians: index and the step that restarts them.
    down: Vec<(usize, u64)>,
    checks: u64,
    obs: VoprObs,
}

impl Run {
    fn up_indices(&self, w: &World) -> Vec<usize> {
        (0..self.gids.len())
            .filter(|i| w.is_up(self.gids[*i]))
            .collect()
    }

    fn is_scheduled_down(&self, i: usize) -> bool {
        self.down.iter().any(|(d, _)| *d == i)
    }

    fn is_paused(&self, i: usize) -> bool {
        self.paused.iter().any(|(p, _)| *p == i)
    }

    /// Applies every heal/resume/restart whose step has come, and converts
    /// armed crashes that fired since the last step into scheduled
    /// restarts.
    fn tick_timers(&mut self, w: &mut World, step: u64) {
        let mut i = 0;
        while i < self.partitions.len() {
            if self.partitions[i].2 <= step {
                let (a, b, _) = self.partitions.remove(i);
                w.heal_partition(self.gids[a], self.gids[b]);
                self.tally.heals += 1;
                self.obs.heals.inc();
                self.schedule.push(format!("step {step}: heal G{a}-G{b}"));
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.paused.len() {
            if self.paused[i].1 <= step {
                let (p, _) = self.paused.remove(i);
                w.resume_guardian(self.gids[p]);
                // The pause *is* the skew: the node slept while the shared
                // clock ran. Make the gap explicit on resume.
                let skew = 500 + self.rng.gen_range(5_000);
                w.clock.advance(skew);
                self.tally.skews += 1;
                self.obs.skews.inc();
                self.schedule
                    .push(format!("step {step}: resume G{p} (skew {skew}us)"));
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.down.len() {
            if self.down[i].1 <= step {
                let (d, _) = self.down.remove(i);
                self.restart(w, d, step);
            } else {
                i += 1;
            }
        }
        // An armed plan may have fired inside a workload op or housekeeping
        // pass: the node is discovered down without an explicit crash call.
        for i in 0..self.gids.len() {
            let g = self.gids[i];
            if !w.is_up(g) && !self.is_scheduled_down(i) {
                w.crash(g); // normalize: volatile state is gone, mail drops
                let at = step + 1 + self.rng.gen_range(6);
                self.down.push((i, at));
                self.tally.crashes += 1;
                self.obs.crashes.inc();
                self.schedule.push(format!(
                    "step {step}: armed crash fired at G{i}, restart@{at}"
                ));
            }
        }
    }

    fn restart(&mut self, w: &mut World, i: usize, step: u64) {
        let g = self.gids[i];
        if w.is_up(g) {
            return;
        }
        self.tally.restarts += 1;
        self.obs.restarts.inc();
        match w.restart(g) {
            Ok(_) => self.schedule.push(format!("step {step}: restart G{i}")),
            Err(e) => {
                self.violations
                    .push(format!("step {step}: restart G{i} failed: {e}"));
            }
        }
    }

    /// One randomized workload action: a 1–3 guardian write set under a
    /// fresh variable, committed by 2PC (or aborted by the client / a
    /// failed write), with the observed fate recorded for the oracle.
    fn action(&mut self, w: &mut World, step: u64) {
        let ups = self.up_indices(w);
        if ups.is_empty() {
            self.schedule
                .push(format!("step {step}: action skipped (all down)"));
            return;
        }
        let origin = self.gids[ups[self.rng.gen_range(ups.len() as u64) as usize]];
        let span = self.gids.len().min(3) as u64;
        let n_targets = 1 + self.rng.gen_range(span) as usize;
        let mut idxs: Vec<usize> = (0..self.gids.len()).collect();
        self.rng.shuffle(&mut idxs);
        // Targets may include down guardians: the failed write exercises
        // the client's give-up-and-abort path.
        let targets: Vec<usize> = idxs.into_iter().take(n_targets).collect();
        let client_abort = self.rng.gen_bool(0.08);

        let idx = self.records.len();
        let var = format!("v{idx}");
        let val = idx as i64 + 1;
        let Ok(aid) = w.begin(origin) else {
            self.schedule
                .push(format!("step {step}: begin failed (origin crashed)"));
            return;
        };
        let mut writes = Vec::new();
        let mut all_written = true;
        for &t in &targets {
            let g = self.gids[t];
            writes.push((g, var.clone(), val));
            if w.set_stable(g, aid, &var, Value::Int(val)).is_err() {
                all_written = false;
                break;
            }
        }
        let fate = if client_abort || !all_written {
            w.abort_local(aid);
            Fate::Aborted
        } else {
            match w.commit(aid) {
                Ok(Outcome::Committed) => Fate::Committed,
                Ok(Outcome::Aborted) => Fate::Aborted,
                Ok(Outcome::Pending) | Err(_) => Fate::InDoubt,
            }
        };
        self.obs.actions.inc();
        self.schedule.push(format!(
            "step {step}: action {var} at {targets:?} -> {fate:?}"
        ));
        self.records.push(Rec { writes, fate });
    }

    /// One randomized fault op, weighted toward the cheap network shapes.
    fn fault(&mut self, w: &mut World, step: u64, roll: u64) {
        let n = self.gids.len();
        match roll {
            // Partition a random up pair, heal scheduled a few steps out.
            0..=19 => {
                if n < 2 {
                    return;
                }
                let a = self.rng.gen_range(n as u64) as usize;
                let mut b = self.rng.gen_range(n as u64 - 1) as usize;
                if b >= a {
                    b += 1;
                }
                let (a, b) = (a.min(b), a.max(b));
                if self.partitions.iter().any(|(x, y, _)| (*x, *y) == (a, b)) {
                    return;
                }
                let heal_at = step + 1 + self.rng.gen_range(12);
                w.partition(self.gids[a], self.gids[b]);
                self.partitions.push((a, b, heal_at));
                self.tally.partitions += 1;
                self.obs.partitions.inc();
                self.schedule
                    .push(format!("step {step}: partition G{a}-G{b}, heal@{heal_at}"));
            }
            // Heal the oldest partition early.
            20..=29 => {
                if self.partitions.is_empty() {
                    return;
                }
                let (a, b, _) = self.partitions.remove(0);
                w.heal_partition(self.gids[a], self.gids[b]);
                self.tally.heals += 1;
                self.obs.heals.inc();
                self.schedule
                    .push(format!("step {step}: early heal G{a}-G{b}"));
            }
            // Pause an up, unpaused guardian for a few steps.
            30..=44 => {
                let ups: Vec<usize> = self
                    .up_indices(w)
                    .into_iter()
                    .filter(|i| !self.is_paused(*i))
                    .collect();
                if ups.is_empty() {
                    return;
                }
                let p = ups[self.rng.gen_range(ups.len() as u64) as usize];
                let resume_at = step + 1 + self.rng.gen_range(6);
                w.pause_guardian(self.gids[p]);
                self.paused.push((p, resume_at));
                self.tally.pauses += 1;
                self.obs.pauses.inc();
                self.schedule
                    .push(format!("step {step}: pause G{p}, resume@{resume_at}"));
            }
            // Pure clock skew: time passes with no matching work.
            45..=54 => {
                let skew = 1 + self.rng.gen_range(2_000);
                w.clock.advance(skew);
                self.tally.skews += 1;
                self.obs.skews.inc();
                self.schedule.push(format!("step {step}: skew {skew}us"));
            }
            // Decay one mirror leg of a random page on a random guardian.
            55..=69 => {
                let i = self.rng.gen_range(n as u64) as usize;
                let pno = self.rng.gen_range(48);
                let decayed = w.decay_page(self.gids[i], pno).unwrap_or(false);
                if decayed {
                    self.tally.decays += 1;
                    self.obs.decays.inc();
                    self.schedule
                        .push(format!("step {step}: decay G{i} page {pno}"));
                }
            }
            // Explicit crash (never the last guardian standing).
            70..=81 => {
                let ups = self.up_indices(w);
                if ups.len() < 2 {
                    return;
                }
                let c = ups[self.rng.gen_range(ups.len() as u64) as usize];
                w.crash(self.gids[c]);
                let at = step + 1 + self.rng.gen_range(8);
                self.down.push((c, at));
                self.tally.crashes += 1;
                self.obs.crashes.inc();
                self.schedule
                    .push(format!("step {step}: crash G{c}, restart@{at}"));
            }
            // Arm a crash to fire mid-protocol, at a future device write.
            82..=89 => {
                let ups = self.up_indices(w);
                if ups.len() < 2 {
                    return;
                }
                let c = ups[self.rng.gen_range(ups.len() as u64) as usize];
                let after = self.rng.gen_range(24);
                if w.arm_crash_after_writes(self.gids[c], after).is_ok() {
                    self.schedule
                        .push(format!("step {step}: arm crash G{c} after {after} writes"));
                }
            }
            // Early restart of a scheduled-down guardian.
            _ => {
                if self.down.is_empty() {
                    return;
                }
                let (d, _) = self.down.remove(0);
                self.restart(w, d, step);
            }
        }
    }

    /// Drives the world to quiescence and runs the standing invariants.
    /// Mid-run (`terminal == false`) only the structural checks and
    /// aborted-invisibility apply: a partition may legitimately be holding
    /// a committed action's phase-two mail, so the durability clauses wait
    /// for the terminal settle.
    fn quiesce_and_check(&mut self, w: &mut World, step: u64, terminal: bool) {
        if let Err(e) = w.run_until_quiet() {
            self.violations
                .push(format!("step {step}: quiesce failed: {e}"));
            return;
        }
        if let Err(e) = w.requery_in_doubt() {
            self.violations
                .push(format!("step {step}: requery failed: {e}"));
            return;
        }
        // A requery or drain can trip an armed plan; normalize before
        // linting so down guardians are skipped, not half-read.
        self.tick_timers(w, step);
        self.checks += 1;
        self.obs.checks.inc();

        let before = self.violations.len();
        for v in crate::lint_trace(w.tracer()) {
            self.violations.push(format!("step {step}: trace: {v}"));
        }
        let live = w.live_actions();
        for (i, g) in self.gids.iter().enumerate() {
            if !w.is_up(*g) {
                if terminal {
                    self.violations
                        .push(format!("step {step}: G{i} still down at terminal check"));
                }
                continue;
            }
            match w.dump_log(*g) {
                Ok(Some(entries)) => {
                    let report = lint_log(&LogImage::from_entries(entries));
                    if !report.is_clean() {
                        self.violations
                            .push(format!("step {step}: G{i} log lint: {report}"));
                    }
                }
                Ok(None) => {} // shadowing keeps no log
                Err(e) => self
                    .violations
                    .push(format!("step {step}: G{i} log dump failed: {e}")),
            }
            let heap = &w.guardian(*g).expect("guardian").heap;
            for v in lint_heap_quiesced(heap, &live) {
                self.violations.push(format!("step {step}: G{i} heap: {v}"));
            }
        }
        self.oracle(w, step, terminal);
        if self.violations.len() > before {
            self.schedule.push(format!(
                "step {step}: CHECK FAILED ({} new violations)",
                self.violations.len() - before
            ));
        }
    }

    /// The legal-outcomes oracle over the recorded actions. Mid-run only
    /// the aborted-invisibility clause is sound; the terminal check holds
    /// committed and in-doubt actions to durability and atomicity.
    fn oracle(&mut self, w: &World, step: u64, terminal: bool) {
        for rec in &self.records {
            let observed: Vec<(GuardianId, &str, Option<Value>)> = rec
                .writes
                .iter()
                .map(|(g, var, _)| {
                    let v = w.guardian(*g).expect("guardian").stable_value(var);
                    (*g, var.as_str(), v)
                })
                .collect();
            match rec.fate {
                Fate::Aborted => {
                    for (g, var, got) in &observed {
                        if got.is_some() {
                            self.violations.push(format!(
                                "step {step}: aborted write {var} became visible at {g:?} ({got:?})"
                            ));
                        }
                    }
                }
                Fate::Committed if terminal => {
                    for ((g, var, got), (_, _, want)) in observed.iter().zip(&rec.writes) {
                        if got.as_ref() != Some(&Value::Int(*want)) {
                            self.violations.push(format!(
                                "step {step}: committed write {var}={want} lost at {g:?} \
                                 (found {got:?})"
                            ));
                        }
                    }
                }
                Fate::InDoubt if terminal => {
                    let visible = observed.iter().filter(|(_, _, v)| v.is_some()).count();
                    if visible != 0 && visible != observed.len() {
                        self.violations.push(format!(
                            "step {step}: in-doubt action resolved non-atomically: {observed:?}"
                        ));
                    } else if visible == observed.len() {
                        for ((g, var, got), (_, _, want)) in observed.iter().zip(&rec.writes) {
                            if got.as_ref() != Some(&Value::Int(*want)) {
                                self.violations.push(format!(
                                    "step {step}: in-doubt write {var} committed a wrong value \
                                     at {g:?}: {got:?} != {want}"
                                ));
                            }
                        }
                    }
                }
                Fate::Committed | Fate::InDoubt => {} // mid-run: mail may be held
            }
        }
    }
}

/// Runs one seeded explorer run end to end. See the module docs for the
/// schedule structure and the replay contract.
pub fn vopr(cfg: &VoprConfig) -> VoprSummary {
    let obs = VoprObs::resolve();
    let mut rng = DetRng::new(cfg.seed);
    let n = cfg.guardians.max(2) as usize;
    let mut w = World::with_config(
        CostModel::fast(),
        WorldConfig {
            media: MediaKind::Mirrored, // so decay has a leg to take
            ..WorldConfig::default()
        },
    );
    let gids: Vec<GuardianId> = (0..n)
        .map(|_| w.add_guardian(cfg.kind).expect("add guardian"))
        .collect();
    // Housekeeping armed low, so log truncation runs *during* the faults.
    let hk_mode = match cfg.kind {
        RsKind::Simple | RsKind::Redo => HousekeepingMode::Compaction,
        RsKind::Hybrid | RsKind::Shadow => HousekeepingMode::Snapshot,
    };
    for g in &gids {
        w.set_housekeeping_policy(*g, 24, hk_mode).expect("policy");
    }
    // The fault mix itself is seeded: different seeds explore different
    // drop/duplicate/defer densities, not just different event orders.
    let drop_p = rng.gen_f64() * 0.10;
    let dup_p = rng.gen_f64() * 0.20;
    let defer_p = rng.gen_f64() * 0.30;
    let net_seed = rng.next_u64();
    w.set_network_faults(Some(
        NetFaults::new(net_seed, dup_p, defer_p).with_drop(drop_p),
    ));

    let mut run = Run {
        rng,
        gids,
        records: Vec::new(),
        schedule: vec![format!(
            "vopr seed={} steps={} kind={:?} guardians={n} drop={drop_p:.3} dup={dup_p:.3} \
             defer={defer_p:.3}",
            cfg.seed, cfg.steps, cfg.kind
        )],
        violations: Vec::new(),
        tally: FaultTally::default(),
        partitions: Vec::new(),
        paused: Vec::new(),
        down: Vec::new(),
        checks: 0,
        obs,
    };

    for step in 0..cfg.steps {
        run.obs.steps.inc();
        run.tick_timers(&mut w, step);
        let roll = run.rng.gen_range(100);
        if roll < 55 {
            run.action(&mut w, step);
        } else {
            let fault_roll = run.rng.gen_range(100);
            run.fault(&mut w, step, fault_roll);
        }
        if cfg.check_every > 0 && (step + 1) % cfg.check_every == 0 {
            run.quiesce_and_check(&mut w, step, false);
        }
    }

    // Terminal settle: lift every fault — the §2.2 "eventually any two
    // nodes can communicate" — and hold the survivors to the full oracle.
    run.schedule
        .push("terminal: lift faults, restart the down, drain".to_owned());
    w.set_network_faults(None);
    w.heal_all_partitions();
    run.partitions.clear();
    for (p, _) in std::mem::take(&mut run.paused) {
        w.resume_guardian(run.gids[p]);
    }
    for g in &run.gids {
        if let Ok(plan) = w.fault_plan(*g) {
            plan.disarm();
        }
    }
    let final_step = cfg.steps;
    for _ in 0..3 {
        let still: Vec<usize> = (0..run.gids.len())
            .filter(|i| !w.is_up(run.gids[*i]))
            .collect();
        if still.is_empty() {
            break;
        }
        for i in still {
            w.crash(run.gids[i]); // normalize armed-fired volatile state
            run.restart(&mut w, i, final_step);
        }
    }
    run.down.clear();
    if cfg.break_oracle {
        // The self-test: an expectation no run can satisfy. The explorer
        // must notice, replay identically, and dump the schedule.
        run.schedule
            .push("selftest: inject false committed expectation".to_owned());
        run.records.push(Rec {
            writes: vec![(run.gids[0], "vopr-selftest-never-written".to_owned(), 42)],
            fate: Fate::Committed,
        });
    }
    run.quiesce_and_check(&mut w, final_step, true);
    // A second settle pass: the first requery can itself resolve fates
    // that release new mail.
    if run.violations.is_empty() {
        run.quiesce_and_check(&mut w, final_step, true);
    }

    // The network's own fault tallies are authoritative for the injector
    // kinds; fold them into the per-kind counters.
    let net = w.network();
    run.tally.drops = net.fault_dropped();
    run.tally.duplicates = net.duplicated();
    run.tally.defers = net.deferred();
    run.obs.drops.add(run.tally.drops);
    run.obs.duplicates.add(run.tally.duplicates);
    run.obs.defers.add(run.tally.defers);

    let mut flight = Vec::new();
    if !run.violations.is_empty() {
        run.obs.violations.add(run.violations.len() as u64);
        for v in &run.violations {
            run.schedule.push(format!("violation: {v}"));
        }
        // Each surviving guardian's log, decoded, to make the dump a
        // self-contained counterexample.
        for (i, g) in run.gids.iter().enumerate() {
            if !w.is_up(*g) {
                continue;
            }
            match w.dump_log(*g) {
                Ok(Some(entries)) => {
                    run.schedule
                        .push(format!("G{i} log ({} entries):", entries.len()));
                    for (addr, entry) in entries {
                        run.schedule.push(format!("  {addr} {entry:?}"));
                    }
                }
                Ok(None) => run.schedule.push(format!("G{i}: no log (shadowed store)")),
                Err(e) => run.schedule.push(format!("G{i}: log dump failed: {e}")),
            }
        }
        let label = format!("vopr-seed{}", cfg.seed);
        if let Ok(p) = argus_trace::flight::dump_text(&label, &run.schedule) {
            flight.push(p.display().to_string());
        }
        if let Ok(p) = argus_trace::flight::dump(&label, &w.tracer().events()) {
            flight.push(p.display().to_string());
        }
    }

    let (mut committed, mut aborted, mut in_doubt) = (0u64, 0u64, 0u64);
    for rec in &run.records {
        match rec.fate {
            Fate::Committed => committed += 1,
            Fate::Aborted => aborted += 1,
            Fate::InDoubt => in_doubt += 1,
        }
    }
    VoprSummary {
        seed: cfg.seed,
        steps: cfg.steps,
        actions: run.records.len() as u64 - u64::from(cfg.break_oracle),
        committed,
        aborted,
        in_doubt,
        checks: run.checks,
        faults: run.tally,
        sim_us: w.clock.now(),
        violations: run.violations,
        flight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_seeded_run_is_clean_and_does_work() {
        let reg = argus_obs::Registry::new();
        let _scope = reg.enter();
        let s = vopr(&VoprConfig::new(1, 64));
        s.assert_clean();
        assert!(s.actions > 0, "{}", s.line());
        assert!(s.checks > 0, "{}", s.line());
    }

    #[test]
    fn same_seed_same_summary() {
        let reg = argus_obs::Registry::new();
        let _scope = reg.enter();
        let a = vopr(&VoprConfig::new(42, 48));
        let b = vopr(&VoprConfig::new(42, 48));
        assert_eq!(a.line(), b.line());
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn broken_oracle_is_caught_and_replays() {
        let reg = argus_obs::Registry::new();
        let _scope = reg.enter();
        let dir = std::env::temp_dir().join("argus-vopr-selftest-unit");
        std::env::set_var("ARGUS_FLIGHT_DIR", &dir);
        let mut cfg = VoprConfig::new(5, 24);
        cfg.break_oracle = true;
        let a = vopr(&cfg);
        let b = vopr(&cfg);
        std::env::remove_var("ARGUS_FLIGHT_DIR");
        assert!(!a.is_clean(), "the self-test must find the planted bug");
        assert_eq!(a.violations, b.violations, "violations must replay");
        assert!(!a.flight.is_empty(), "a violation must dump its schedule");
        for p in a.flight.iter().chain(&b.flight) {
            assert!(std::path::Path::new(p).exists(), "missing dump {p}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
