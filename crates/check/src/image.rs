//! A decoded, address-indexed picture of one log — the linter's input.
//!
//! The image can be built from a live [`StableLog`] (every forced record is
//! read backward, decoded, and indexed), or from an already-decoded entry
//! list such as `HybridLogRs::dump_entries` / `SimpleLogRs::dump_entries`
//! hand back. Decode failures do not abort construction: they are recorded
//! and surface as I1 violations, so the linter can report on a corrupt log
//! instead of refusing to look at it.

use argus_core::{decode_entry, LogEntry};
use argus_slog::{LogAddress, StableLog};
use argus_stable::PageStore;
use std::collections::BTreeMap;

/// One record that could not be decoded into a [`LogEntry`].
#[derive(Debug, Clone)]
pub struct BadRecord {
    /// Where the record sits.
    pub addr: LogAddress,
    /// Why decoding failed (codec error or device-level corruption).
    pub why: String,
}

/// A decoded log image: every forced entry, oldest first, indexed by address.
#[derive(Debug, Clone, Default)]
pub struct LogImage {
    entries: Vec<(LogAddress, LogEntry)>,
    by_addr: BTreeMap<u64, usize>,
    /// Sequence numbers parallel to `entries`, when the image came from a
    /// device (entry lists fabricated in memory have none).
    seqs: Option<Vec<u64>>,
    /// Records that failed to decode.
    bad: Vec<BadRecord>,
}

impl LogImage {
    /// Builds an image from already-decoded entries (ascending addresses, as
    /// `dump_entries` returns them).
    pub fn from_entries(entries: Vec<(LogAddress, LogEntry)>) -> Self {
        let mut entries = entries;
        entries.sort_by_key(|(a, _)| *a);
        let by_addr = entries
            .iter()
            .enumerate()
            .map(|(i, (a, _))| (a.offset(), i))
            .collect();
        Self {
            entries,
            by_addr,
            seqs: None,
            bad: Vec::new(),
        }
    }

    /// Reads every forced record of `log` and decodes it. Undecodable
    /// records land in [`LogImage::bad_records`] rather than failing.
    pub fn from_log<S: PageStore>(log: &mut StableLog<S>) -> Self {
        let mut raw: Vec<(LogAddress, u64, Result<LogEntry, String>)> = Vec::new();
        for item in log.read_backward(None) {
            match item {
                Ok((addr, seq, payload)) => {
                    let decoded = decode_entry(&payload).map_err(|e| e.to_string());
                    raw.push((addr, seq, decoded));
                }
                Err(e) => {
                    // The walk itself broke: record the failure at the point
                    // it happened and stop (nothing older is reachable).
                    raw.push((LogAddress(0), 0, Err(format!("backward walk: {e}"))));
                    break;
                }
            }
        }
        raw.reverse();
        let mut entries = Vec::new();
        let mut seqs = Vec::new();
        let mut bad = Vec::new();
        for (addr, seq, decoded) in raw {
            match decoded {
                Ok(entry) => {
                    entries.push((addr, entry));
                    seqs.push(seq);
                }
                Err(why) => bad.push(BadRecord { addr, why }),
            }
        }
        let by_addr = entries
            .iter()
            .enumerate()
            .map(|(i, (a, _))| (a.offset(), i))
            .collect();
        Self {
            entries,
            by_addr,
            seqs: Some(seqs),
            bad,
        }
    }

    /// Every decoded entry, oldest first.
    pub fn entries(&self) -> &[(LogAddress, LogEntry)] {
        &self.entries
    }

    /// The entry at `addr`, if one was decoded there.
    pub fn get(&self, addr: LogAddress) -> Option<&LogEntry> {
        self.by_addr
            .get(&addr.offset())
            .map(|&i| &self.entries[i].1)
    }

    /// Device sequence numbers parallel to [`LogImage::entries`], when known.
    pub fn seqs(&self) -> Option<&[u64]> {
        self.seqs.as_deref()
    }

    /// Records that failed to decode.
    pub fn bad_records(&self) -> &[BadRecord] {
        &self.bad
    }

    /// The newest outcome entry's address — the head of the backward chain.
    pub fn chain_head(&self) -> Option<LogAddress> {
        self.entries
            .iter()
            .rev()
            .find(|(_, e)| e.is_outcome())
            .map(|(a, _)| *a)
    }

    /// Number of decoded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the image holds no decoded entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_core::{encode_entry, LogEntry};
    use argus_objects::{ActionId, GuardianId};
    use argus_sim::{CostModel, SimClock};
    use argus_stable::MemStore;

    fn aid(n: u64) -> ActionId {
        ActionId::new(GuardianId(0), n)
    }

    #[test]
    fn from_log_decodes_forced_entries_oldest_first() {
        let mut log = StableLog::create(MemStore::new(SimClock::new(), CostModel::fast())).unwrap();
        let e1 = LogEntry::Prepared {
            aid: aid(1),
            pairs: vec![],
            prev: None,
        };
        let a1 = log.force_write(&encode_entry(&e1).unwrap()).unwrap();
        let e2 = LogEntry::Committed {
            aid: aid(1),
            prev: Some(a1),
        };
        let a2 = log.force_write(&encode_entry(&e2).unwrap()).unwrap();
        log.write(b"never forced, never seen");

        let image = LogImage::from_log(&mut log);
        assert_eq!(image.len(), 2);
        assert_eq!(image.entries()[0], (a1, e1));
        assert_eq!(image.entries()[1], (a2, e2.clone()));
        assert_eq!(image.get(a2), Some(&e2));
        assert_eq!(image.chain_head(), Some(a2));
        assert_eq!(image.seqs(), Some(&[0, 1][..]));
        assert!(image.bad_records().is_empty());
    }

    #[test]
    fn undecodable_records_are_collected_not_fatal() {
        let mut log = StableLog::create(MemStore::new(SimClock::new(), CostModel::fast())).unwrap();
        log.force_write(b"\xffjunk that is not an entry").unwrap();
        let ok = LogEntry::Done {
            aid: aid(1),
            prev: None,
        };
        log.force_write(&encode_entry(&ok).unwrap()).unwrap();
        let image = LogImage::from_log(&mut log);
        assert_eq!(image.len(), 1);
        assert_eq!(image.bad_records().len(), 1);
    }

    #[test]
    fn from_entries_sorts_and_indexes() {
        let e = |n| LogEntry::Done {
            aid: aid(n),
            prev: None,
        };
        let image = LogImage::from_entries(vec![(LogAddress(900), e(2)), (LogAddress(512), e(1))]);
        assert_eq!(image.entries()[0].0, LogAddress(512));
        assert_eq!(image.get(LogAddress(900)), Some(&e(2)));
        assert_eq!(image.chain_head(), Some(LogAddress(900)));
    }
}
