//! The bounded 2PC interleaving explorer.
//!
//! A deterministic DFS over the *real* `twopc` coordinator/participant state
//! machines (the same code `argus-guardian` drives) that enumerates every
//! message reordering, message drop, and crash point up to a configurable
//! budget, and checks atomicity at every reachable state:
//!
//! * **A1** — a participant only logs `committed` after the coordinator
//!   logged `committing` (the commit point, §2.2.1).
//! * **A2** — no two participants resolve the same action differently: a
//!   `committed` record at one guardian and an `aborted` record at another
//!   is the canonical atomicity violation.
//! * **A3** — every node's log passes the static linter ([`crate::lint_log`])
//!   at every reachable state, crash states included.
//! * **A4** — past the commit point no participant aborts: abort
//!   instructions are only ever issued before the coordinator forces
//!   `committing`, so a `committing` record and a participant `aborted`
//!   record for the same action can never coexist.
//! * **Termination** — in every quiescent terminal state no participant is
//!   prepared-forever: each either resolved or never passed its prepare
//!   point.
//!
//! Each node keeps a *model log* of real [`LogEntry`] values at synthesized
//! addresses: forced records survive crashes, machine state does not.
//! Restart rebuilds PT/CT exactly the way `core`'s recovery does
//! (first-insertion-wins over a backward scan) and resumes the machines the
//! way `argus-guardian`'s `World::restart` does — including the
//! presumed-abort rule: a coordinator with no `committing` record answers
//! queries with "aborted".

use crate::image::LogImage;
use crate::lint::lint_log;
use crate::obs::ExploreObs;
use argus_core::LogEntry;
use argus_objects::{ActionId, GuardianId, ObjKind, Uid, Value};
use argus_slog::LogAddress;
use argus_twopc::{
    CoordEffect, CoordPhase, Coordinator, Envelope, Msg, PartEffect, PartPhase, Participant,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::rc::Rc;

/// Exploration budgets.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Number of participant guardians (the coordinator is a separate node).
    pub participants: usize,
    /// How many crashes may be injected along one schedule.
    pub max_crashes: u32,
    /// How many messages may be dropped along one schedule.
    pub max_drops: u32,
    /// Hard cap on distinct states visited; hitting it is reported in
    /// [`ExploreStats::depth_limited`], not an error.
    pub max_states: usize,
    /// Whether a fresh participant may refuse the prepare (exercises the
    /// abort side of the protocol).
    pub allow_refusal: bool,
    /// Whether a crashed node may restart while messages are still in
    /// flight. Eager restarts race recovery against stale traffic — the
    /// schedule class that exposed the stale-vote atomicity bug (a restarted
    /// participant's query answered "aborted" while its pre-crash vote was
    /// still in flight) — but they multiply the state space by orders of
    /// magnitude. When off, nodes restart only once the network is quiet
    /// (always reachable: delivery to a down node consumes the message).
    pub eager_restarts: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            participants: 2,
            max_crashes: 1,
            max_drops: 1,
            max_states: 200_000,
            allow_refusal: true,
            eager_restarts: false,
        }
    }
}

/// Coverage counters for one exploration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreStats {
    /// Distinct states visited.
    pub states_visited: u64,
    /// Successor states pruned because they were already visited.
    pub dedup_pruned: u64,
    /// Crash points injected (mid-delivery and idle).
    pub crash_points: u64,
    /// Messages delivered.
    pub deliveries: u64,
    /// Messages dropped.
    pub drops: u64,
    /// Quiescent fully-resolved terminal states reached.
    pub terminal_states: u64,
    /// Per-node log lints run.
    pub lint_runs: u64,
    /// Expansions cut off by the state cap.
    pub depth_limited: u64,
}

/// The explorer's verdict.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Coverage counters.
    pub stats: ExploreStats,
    /// Every atomicity/lint violation found, with the state that exhibits it.
    pub violations: Vec<String>,
}

impl ExploreReport {
    /// Whether every reachable state satisfied A1–A3 and termination.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with the violation list if the protocol misbehaved.
    #[track_caller]
    pub fn assert_ok(&self) {
        assert!(
            self.ok(),
            "2PC exploration found {} violation(s):\n{}",
            self.violations.len(),
            self.violations.join("\n")
        );
    }
}

// ---- model state ---------------------------------------------------------

const DATA_START: u64 = 512;
const ENTRY_SPACING: u64 = 64;

/// One node's durable side: the model log.
///
/// The entry vector sits behind an [`Rc`] so cloning a state (which the DFS
/// does once per successor, tens of millions of times) is a refcount bump;
/// the rare append copies-on-write. The content hash is maintained on append
/// and shared by the state fingerprint and the lint memo table.
#[derive(Debug, Clone)]
struct ModelLog {
    entries: Rc<Vec<(LogAddress, LogEntry)>>,
    last_outcome: Option<LogAddress>,
    next_addr: u64,
    content_hash: u64,
}

impl ModelLog {
    fn new() -> Self {
        Self {
            entries: Rc::new(Vec::new()),
            last_outcome: None,
            next_addr: DATA_START,
            content_hash: Self::hash_entries(&[]),
        }
    }

    fn hash_entries(entries: &[(LogAddress, LogEntry)]) -> u64 {
        let mut h = DefaultHasher::new();
        entries.hash(&mut h);
        h.finish()
    }

    fn append(&mut self, mut entry: LogEntry) -> LogAddress {
        let addr = LogAddress(self.next_addr);
        self.next_addr += ENTRY_SPACING;
        if entry.is_outcome() {
            entry.set_prev(self.last_outcome);
            self.last_outcome = Some(addr);
        }
        Rc::make_mut(&mut self.entries).push((addr, entry));
        self.content_hash = Self::hash_entries(&self.entries);
        addr
    }

    fn has_committed(&self, aid: ActionId) -> bool {
        self.entries
            .iter()
            .any(|(_, e)| matches!(e, LogEntry::Committed { aid: a, .. } if *a == aid))
    }

    fn has_aborted(&self, aid: ActionId) -> bool {
        self.entries
            .iter()
            .any(|(_, e)| matches!(e, LogEntry::Aborted { aid: a, .. } if *a == aid))
    }

    fn has_committing(&self, aid: ActionId) -> bool {
        self.entries
            .iter()
            .any(|(_, e)| matches!(e, LogEntry::Committing { aid: a, .. } if *a == aid))
    }

    /// Rebuilds this node's participant verdict the way recovery does:
    /// newest entry first, first insertion wins.
    fn recovered_pstate(&self, aid: ActionId) -> Option<argus_core::PState> {
        for (_, entry) in self.entries.iter().rev() {
            match entry {
                LogEntry::Committed { aid: a, .. } if *a == aid => {
                    return Some(argus_core::PState::Committed)
                }
                LogEntry::Aborted { aid: a, .. } if *a == aid => {
                    return Some(argus_core::PState::Aborted)
                }
                LogEntry::Prepared { aid: a, .. } if *a == aid => {
                    return Some(argus_core::PState::Prepared)
                }
                _ => {}
            }
        }
        None
    }

    /// Rebuilds the coordinator's state: `Some(true)` = done, `Some(false)` =
    /// committing (phase two restartable), `None` = no trace (presumed
    /// abort).
    fn recovered_cstate(&self, aid: ActionId) -> Option<(bool, Vec<GuardianId>)> {
        for (_, entry) in self.entries.iter().rev() {
            match entry {
                LogEntry::Done { aid: a, .. } if *a == aid => return Some((true, Vec::new())),
                LogEntry::Committing { aid: a, gids, .. } if *a == aid => {
                    return Some((false, gids.clone()))
                }
                _ => {}
            }
        }
        None
    }
}

/// The coordinator node.
#[derive(Debug, Clone)]
struct CoordNode {
    up: bool,
    log: ModelLog,
    machine: Option<Coordinator>,
    /// The `done` record is on the log (survives the machine).
    done: bool,
    /// The protocol finished at the coordinator with this verdict.
    finished: Option<bool>,
}

/// One participant node.
#[derive(Debug, Clone)]
struct PartNode {
    up: bool,
    log: ModelLog,
    machine: Option<Participant>,
    /// Locally resolved verdict (from a forced record or a refusal).
    resolved: Option<bool>,
}

/// One step of the schedule that produced a state, as a singly linked list
/// shared structurally between a state and its successors (cloning a state
/// is still a refcount bump). This is the flight recorder's raw material:
/// when a violation is found the chain is unwound into the exact schedule
/// that reaches it.
#[derive(Debug)]
struct PathNode {
    step: String,
    prev: Option<Rc<PathNode>>,
}

/// One global state of the protocol.
#[derive(Debug, Clone)]
struct State {
    coord: CoordNode,
    parts: Vec<PartNode>,
    inflight: Vec<Envelope>,
    crashes_left: u32,
    drops_left: u32,
    /// The schedule that produced this state. Deliberately excluded from
    /// [`State::fingerprint`]: two schedules reaching the same protocol
    /// state are the same state, and the first one to arrive keeps its
    /// history for the flight recorder.
    path: Option<Rc<PathNode>>,
}

impl State {
    /// A canonical fingerprint: machine phases, logs, and the in-flight
    /// multiset (order-insensitive). Hashed with [`DefaultHasher`], which is
    /// deterministic — it is built with fixed keys, never seeded.
    fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.coord.up.hash(&mut h);
        self.coord.done.hash(&mut h);
        self.coord.finished.hash(&mut h);
        match &self.coord.machine {
            Some(c) => {
                c.phase().hash(&mut h);
                c.awaiting().hash(&mut h);
            }
            None => 0xffu8.hash(&mut h),
        }
        self.coord.log.content_hash.hash(&mut h);
        for p in &self.parts {
            p.up.hash(&mut h);
            p.resolved.hash(&mut h);
            match &p.machine {
                Some(m) => m.phase().hash(&mut h),
                None => 0xffu8.hash(&mut h),
            }
            p.log.content_hash.hash(&mut h);
        }
        // The in-flight multiset: hash each envelope on its own, then fold
        // the sorted hashes in, so delivery order within the bag is
        // canonical.
        let mut envs: Vec<u64> = self
            .inflight
            .iter()
            .map(|e| {
                let mut eh = DefaultHasher::new();
                e.hash(&mut eh);
                eh.finish()
            })
            .collect();
        envs.sort_unstable();
        envs.hash(&mut h);
        self.crashes_left.hash(&mut h);
        self.drops_left.hash(&mut h);
        h.finish()
    }

    /// Records one schedule step onto this (successor) state's path.
    fn record(&mut self, step: String) {
        self.path = Some(Rc::new(PathNode {
            step,
            prev: self.path.take(),
        }));
    }

    /// Unwinds the path chain into the schedule, root first.
    fn schedule(&self) -> Vec<String> {
        let mut lines = Vec::new();
        let mut cur = self.path.as_deref();
        while let Some(node) = cur {
            lines.push(node.step.clone());
            cur = node.prev.as_deref();
        }
        lines.reverse();
        lines
    }
}

// ---- the explorer --------------------------------------------------------

/// The coordinator's guardian id (node 0); participants are 1..=n.
const COORD: GuardianId = GuardianId(0);

/// The bounded interleaving explorer. See the module docs.
#[derive(Debug)]
pub struct Explorer {
    cfg: ExploreConfig,
    aid: ActionId,
    stats: ExploreStats,
    violations: Vec<String>,
    seen_violations: HashSet<String>,
    /// Lint verdicts keyed by log-content hash: logs repeat across millions
    /// of interleavings, so each distinct log is linted once.
    lint_cache: HashMap<u64, Option<String>>,
}

impl Explorer {
    /// Creates an explorer for one top-level action under `cfg`.
    pub fn new(cfg: ExploreConfig) -> Self {
        Self {
            cfg,
            aid: ActionId::new(COORD, 1),
            stats: ExploreStats::default(),
            violations: Vec::new(),
            seen_violations: HashSet::new(),
            lint_cache: HashMap::new(),
        }
    }

    /// Runs the DFS to exhaustion (or the state cap) and reports.
    pub fn run(mut self) -> ExploreReport {
        let obs = ExploreObs::resolve();
        let root = self.initial_state();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<State> = Vec::new();
        visited.insert(root.fingerprint());
        stack.push(root);
        while let Some(state) = stack.pop() {
            self.stats.states_visited += 1;
            self.check_state(&state);
            if visited.len() >= self.cfg.max_states {
                self.stats.depth_limited += 1;
                continue;
            }
            for next in self.successors(&state) {
                let fp = next.fingerprint();
                if visited.insert(fp) {
                    stack.push(next);
                } else {
                    self.stats.dedup_pruned += 1;
                }
            }
        }
        obs.states_visited.add(self.stats.states_visited);
        obs.dedup_pruned.add(self.stats.dedup_pruned);
        obs.crash_points.add(self.stats.crash_points);
        obs.deliveries.add(self.stats.deliveries);
        obs.drops.add(self.stats.drops);
        obs.terminal_states.add(self.stats.terminal_states);
        obs.lint_runs.add(self.stats.lint_runs);
        obs.depth_limited.add(self.stats.depth_limited);
        ExploreReport {
            stats: self.stats,
            violations: self.violations,
        }
    }

    fn initial_state(&self) -> State {
        let gids: Vec<GuardianId> = (1..=self.cfg.participants as u32).map(GuardianId).collect();
        let coord = Coordinator::new(self.aid, gids.clone());
        let mut inflight = Vec::new();
        for effect in coord.start() {
            if let CoordEffect::Send { to, msg } = effect {
                inflight.push(Envelope {
                    from: COORD,
                    to,
                    msg,
                });
            }
        }
        State {
            coord: CoordNode {
                up: true,
                log: ModelLog::new(),
                machine: Some(coord),
                done: false,
                finished: None,
            },
            parts: (0..self.cfg.participants)
                .map(|_| PartNode {
                    up: true,
                    log: ModelLog::new(),
                    machine: None,
                    resolved: None,
                })
                .collect(),
            inflight,
            crashes_left: self.cfg.max_crashes,
            drops_left: self.cfg.max_drops,
            path: None,
        }
    }

    // ---- safety ----------------------------------------------------------

    fn violation(&mut self, kind: &str, detail: String) {
        let text = format!("[{kind}] {detail}");
        if self.seen_violations.insert(text.clone()) {
            self.violations.push(text);
        }
    }

    fn check_state(&mut self, state: &State) {
        let before = self.violations.len();
        self.check_state_inner(state);
        // Flight recorder: the first state to exhibit a violation dumps the
        // schedule that reaches it, and the violation text points at the
        // file so the repro is one redirect away.
        if self.violations.len() > before {
            let mut lines = state.schedule();
            lines.push(format!(
                "-- {} violation(s) at this state:",
                self.violations.len() - before
            ));
            lines.extend(self.violations[before..].iter().cloned());
            if let Ok(path) = argus_trace::flight::dump_text("explore", &lines) {
                let suffix = format!(" [schedule: {}]", path.display());
                for v in &mut self.violations[before..] {
                    v.push_str(&suffix);
                }
            }
        }
    }

    fn check_state_inner(&mut self, state: &State) {
        let aid = self.aid;
        // A1: a committed participant implies a logged commit point.
        for (i, p) in state.parts.iter().enumerate() {
            if p.log.has_committed(aid) && !state.coord.log.has_committing(aid) {
                self.violation(
                    "A1",
                    format!(
                        "participant {} committed without a coordinator committing record",
                        i + 1
                    ),
                );
            }
        }
        // A2: no mixed verdicts across participant logs.
        let committed = state.parts.iter().position(|p| p.log.has_committed(aid));
        let aborted = state.parts.iter().position(|p| p.log.has_aborted(aid));
        if let (Some(c), Some(a)) = (committed, aborted) {
            self.violation(
                "A2",
                format!(
                    "participant {} committed while participant {} aborted",
                    c + 1,
                    a + 1
                ),
            );
        }
        // A4: past the commit point no participant may abort. A participant
        // only forces `aborted` on instruction, and abort instructions
        // (verdicts, presumed-abort answers) are only issued before the
        // coordinator forces `committing`.
        if state.coord.log.has_committing(aid) {
            for (i, p) in state.parts.iter().enumerate() {
                if p.log.has_aborted(aid) {
                    self.violation(
                        "A4",
                        format!(
                            "participant {} aborted after the coordinator passed the commit point",
                            i + 1
                        ),
                    );
                }
            }
        }
        // A3: every node's log lints clean. Identical logs recur across huge
        // numbers of interleavings, so verdicts are memoized by content.
        let mut lint_failures = Vec::new();
        {
            let logs = std::iter::once((0usize, &state.coord.log))
                .chain(state.parts.iter().enumerate().map(|(i, p)| (i + 1, &p.log)));
            for (node, log) in logs {
                let key = log.content_hash;
                let verdict = match self.lint_cache.get(&key) {
                    Some(v) => v.clone(),
                    None => {
                        self.stats.lint_runs += 1;
                        let report =
                            lint_log(&LogImage::from_entries(log.entries.as_ref().clone()));
                        let v = if report.is_clean() {
                            None
                        } else {
                            let details: Vec<String> =
                                report.violations.iter().map(|v| v.to_string()).collect();
                            Some(details.join("; "))
                        };
                        self.lint_cache.insert(key, v.clone());
                        v
                    }
                };
                if let Some(detail) = verdict {
                    lint_failures.push((node, detail));
                }
            }
        }
        for (node, detail) in lint_failures {
            self.violation("A3", format!("node {node} log fails lint: {detail}"));
        }
        // Termination check on quiescent, all-up, no-move states.
        if state.inflight.is_empty()
            && state.coord.up
            && state.parts.iter().all(|p| p.up)
            && !self.has_quiescent_move(state)
        {
            self.stats.terminal_states += 1;
            for (i, p) in state.parts.iter().enumerate() {
                let prepared_forever = match &p.machine {
                    Some(m) => m.phase() == PartPhase::Prepared,
                    None => {
                        p.resolved.is_none()
                            && p.log.recovered_pstate(aid) == Some(argus_core::PState::Prepared)
                    }
                };
                if prepared_forever {
                    self.violation(
                        "TERM",
                        format!(
                            "terminal state leaves participant {} prepared forever",
                            i + 1
                        ),
                    );
                }
            }
        }
    }

    /// Whether any quiescent recovery move applies (used to decide
    /// terminality; mirrors [`Explorer::quiesce`]).
    fn has_quiescent_move(&self, state: &State) -> bool {
        if !state.inflight.is_empty() {
            return false;
        }
        if state.coord.up {
            if let Some(c) = &state.coord.machine {
                match c.phase() {
                    CoordPhase::Preparing => return true,
                    CoordPhase::Committing | CoordPhase::Aborting if !c.awaiting().is_empty() => {
                        return true;
                    }
                    _ => {}
                }
            }
        }
        state.parts.iter().any(|p| {
            p.up && p
                .machine
                .as_ref()
                .is_some_and(|m| m.phase() == PartPhase::Prepared)
        })
    }

    // ---- successor generation --------------------------------------------

    fn successors(&mut self, state: &State) -> Vec<State> {
        let mut out = Vec::new();
        // Deliveries (every reordering; this is where the fan-out lives).
        for idx in 0..state.inflight.len() {
            let votes: &[bool] = if self.is_fresh_prepare(state, idx) && self.cfg.allow_refusal {
                &[true, false]
            } else {
                &[true]
            };
            for &prepare_ok in votes {
                let (next, steps) = self.deliver(state.clone(), idx, prepare_ok, None);
                self.stats.deliveries += 1;
                out.push(next);
                if state.crashes_left > 0 {
                    // Crash the destination after each effect micro-step
                    // (0 = crash before any effect ran; the message is lost
                    // with the machine).
                    for k in 0..steps {
                        let (crashed, _) = self.deliver(state.clone(), idx, prepare_ok, Some(k));
                        self.stats.crash_points += 1;
                        out.push(crashed);
                    }
                }
            }
        }
        // Drops.
        if state.drops_left > 0 {
            for idx in 0..state.inflight.len() {
                let mut next = state.clone();
                let env = next.inflight.remove(idx);
                next.record(format!(
                    "drop {} {}->{}",
                    env.msg.kind(),
                    env.from.0,
                    env.to.0
                ));
                next.drops_left -= 1;
                self.stats.drops += 1;
                out.push(next);
            }
        }
        // Idle crashes.
        if state.crashes_left > 0 {
            if state.coord.up {
                let mut next = state.clone();
                next.record("crash coordinator".to_string());
                next.coord.up = false;
                next.coord.machine = None;
                next.crashes_left -= 1;
                self.stats.crash_points += 1;
                out.push(next);
            }
            for i in 0..state.parts.len() {
                if state.parts[i].up {
                    let mut next = state.clone();
                    next.record(format!("crash participant {}", i + 1));
                    next.parts[i].up = false;
                    next.parts[i].machine = None;
                    next.parts[i].resolved = None;
                    next.crashes_left -= 1;
                    self.stats.crash_points += 1;
                    out.push(next);
                }
            }
        }
        // Restarts. By default a node comes back only once the network is
        // quiet (delivery to a down node consumes the message, so the queue
        // can always drain); with `eager_restarts` recovery races the stale
        // in-flight traffic too.
        if self.cfg.eager_restarts || state.inflight.is_empty() {
            if !state.coord.up {
                out.push(self.restart_coord(state.clone()));
            }
            for i in 0..state.parts.len() {
                if !state.parts[i].up {
                    out.push(self.restart_part(state.clone(), i));
                }
            }
        }
        // Quiescent recovery moves (timeouts / re-sends / re-queries) — only
        // when nothing is in flight, so they model "the network went quiet".
        if self.has_quiescent_move(state) {
            out.push(self.quiesce(state.clone()));
        }
        out
    }

    /// Is `inflight[idx]` a prepare arriving at a participant that has no
    /// machine, no resolution, and no log trace (i.e. the vote is free)?
    fn is_fresh_prepare(&self, state: &State, idx: usize) -> bool {
        let env = &state.inflight[idx];
        if !matches!(env.msg, Msg::Prepare { .. }) || env.to == COORD {
            return false;
        }
        let Some(p) = state.parts.get((env.to.0 - 1) as usize) else {
            return false;
        };
        p.up && p.machine.is_none() && p.resolved.is_none() && p.log.entries.is_empty()
    }

    // ---- delivery --------------------------------------------------------

    /// Delivers `inflight[idx]`, executing the destination machine's effects
    /// one micro-step at a time. With `crash_after = Some(k)` the
    /// destination crashes after `k` micro-steps: durable log appends and
    /// already-sent messages survive, the machine and the rest of its
    /// effect queue do not. Returns the next state and the number of
    /// micro-steps a full delivery takes.
    fn deliver(
        &self,
        mut state: State,
        idx: usize,
        prepare_ok: bool,
        crash_after: Option<usize>,
    ) -> (State, usize) {
        let env = state.inflight.remove(idx);
        let mut step = format!("deliver {} {}->{}", env.msg.kind(), env.from.0, env.to.0);
        if !prepare_ok {
            step.push_str(" vote=refuse");
        }
        if let Some(k) = crash_after {
            step.push_str(&format!(" crash@{k}"));
        }
        state.record(step);
        let steps = if env.to == COORD {
            self.deliver_to_coord(&mut state, &env, crash_after)
        } else {
            self.deliver_to_part(&mut state, &env, prepare_ok, crash_after)
        };
        (state, steps)
    }

    fn deliver_to_coord(
        &self,
        state: &mut State,
        env: &Envelope,
        crash_after: Option<usize>,
    ) -> usize {
        let coord = &mut state.coord;
        if !coord.up {
            // Delivery to a crashed node: the message evaporates.
            return 0;
        }
        let effects: VecDeque<CoordEffect> = match &mut coord.machine {
            Some(machine) => machine.on_msg(env.from, &env.msg).into(),
            None => {
                // Machine-less coordinator: `done` answers queries with its
                // durable verdict; with no trace at all the presumed-abort
                // rule of §2.2.3 applies.
                match env.msg {
                    Msg::QueryOutcome { aid } => [CoordEffect::Send {
                        to: env.from,
                        msg: Msg::Outcome {
                            aid,
                            committed: coord.done,
                        },
                    }]
                    .into(),
                    _ => VecDeque::new(),
                }
            }
        };
        self.run_coord_effects(state, effects, crash_after)
    }

    /// Executes coordinator effects micro-step by micro-step. Returns steps
    /// taken.
    fn run_coord_effects(
        &self,
        state: &mut State,
        mut queue: VecDeque<CoordEffect>,
        crash_after: Option<usize>,
    ) -> usize {
        let mut steps = 0usize;
        while let Some(effect) = queue.pop_front() {
            if crash_after == Some(steps) {
                state.coord.up = false;
                state.coord.machine = None;
                return steps;
            }
            steps += 1;
            match effect {
                CoordEffect::Send { to, msg } => state.inflight.push(Envelope {
                    from: COORD,
                    to,
                    msg,
                }),
                CoordEffect::ForceCommitting => {
                    let machine = state.coord.machine.as_mut().expect("machine forced");
                    let gids = machine.participants.clone();
                    state.coord.log.append(LogEntry::Committing {
                        aid: self.aid,
                        gids,
                        prev: None,
                    });
                    let more = machine.committing_forced();
                    queue.extend(more);
                }
                CoordEffect::ForceDone => {
                    state.coord.log.append(LogEntry::Done {
                        aid: self.aid,
                        prev: None,
                    });
                    state.coord.done = true;
                    let machine = state.coord.machine.as_mut().expect("machine forced");
                    let more = machine.done_forced();
                    queue.extend(more);
                }
                CoordEffect::Finished { committed } => {
                    state.coord.finished = Some(committed);
                }
            }
        }
        if crash_after == Some(steps) {
            state.coord.up = false;
            state.coord.machine = None;
        }
        steps
    }

    fn deliver_to_part(
        &self,
        state: &mut State,
        env: &Envelope,
        prepare_ok: bool,
        crash_after: Option<usize>,
    ) -> usize {
        let i = (env.to.0 - 1) as usize;
        if !state.parts[i].up {
            return 0;
        }
        let part = &mut state.parts[i];
        let effects: VecDeque<PartEffect> = match (&mut part.machine, &env.msg) {
            (Some(machine), msg) => machine.on_msg(msg).into(),
            (None, Msg::Prepare { aid }) => {
                match part.log.recovered_pstate(*aid) {
                    // Fresh participant: start the protocol.
                    None if part.resolved.is_none() => {
                        let (machine, effects) = Participant::on_prepare(*aid, env.from);
                        part.machine = Some(machine);
                        effects.into()
                    }
                    // A resolved or restarted participant re-votes from its
                    // durable state (§2.2.2: an unknown action is refused).
                    Some(argus_core::PState::Committed) => [PartEffect::Send {
                        to: env.from,
                        msg: Msg::PrepareOk { aid: *aid },
                    }]
                    .into(),
                    _ => [PartEffect::Send {
                        to: env.from,
                        msg: Msg::PrepareRefused { aid: *aid },
                    }]
                    .into(),
                }
            }
            // Verdicts for a machine-less participant: re-acknowledge from
            // the durable verdict so a re-sent commit/abort converges.
            (None, Msg::Commit { aid }) => match part.log.recovered_pstate(*aid) {
                Some(argus_core::PState::Committed) => [PartEffect::Send {
                    to: env.from,
                    msg: Msg::CommitAck { aid: *aid },
                }]
                .into(),
                _ => VecDeque::new(),
            },
            (None, Msg::Abort { aid }) => match part.log.recovered_pstate(*aid) {
                Some(argus_core::PState::Aborted) | None => [PartEffect::Send {
                    to: env.from,
                    msg: Msg::AbortAck { aid: *aid },
                }]
                .into(),
                _ => VecDeque::new(),
            },
            (None, _) => VecDeque::new(),
        };
        self.run_part_effects(state, i, effects, prepare_ok, crash_after)
    }

    /// Executes participant effects micro-step by micro-step.
    fn run_part_effects(
        &self,
        state: &mut State,
        i: usize,
        mut queue: VecDeque<PartEffect>,
        prepare_ok: bool,
        crash_after: Option<usize>,
    ) -> usize {
        let aid = self.aid;
        let mut steps = 0usize;
        while let Some(effect) = queue.pop_front() {
            if crash_after == Some(steps) {
                state.parts[i].up = false;
                state.parts[i].machine = None;
                state.parts[i].resolved = None;
                return steps;
            }
            steps += 1;
            let part = &mut state.parts[i];
            match effect {
                PartEffect::Send { to, msg } => state.inflight.push(Envelope {
                    from: GuardianId(i as u32 + 1),
                    to,
                    msg,
                }),
                PartEffect::PrepareLocally => {
                    let machine = part.machine.as_mut().expect("machine preparing");
                    if prepare_ok {
                        // The local prepare: one data entry plus the forced
                        // `prepared` record carrying its shadow pair.
                        let daddr = part.log.append(LogEntry::DataH {
                            kind: ObjKind::Atomic,
                            value: Value::Int(i as i64),
                        });
                        part.log.append(LogEntry::Prepared {
                            aid,
                            pairs: vec![(Uid(i as u64 + 1), daddr)],
                            prev: None,
                        });
                        queue.extend(machine.prepare_succeeded());
                    } else {
                        // Refusal: nothing reaches the log.
                        queue.extend(machine.prepare_failed());
                        part.resolved = Some(false);
                    }
                }
                PartEffect::ForceCommit => {
                    part.log.append(LogEntry::Committed { aid, prev: None });
                    let machine = part.machine.as_mut().expect("machine resolving");
                    queue.extend(machine.commit_forced());
                }
                PartEffect::ForceAbort => {
                    part.log.append(LogEntry::Aborted { aid, prev: None });
                    let machine = part.machine.as_mut().expect("machine resolving");
                    queue.extend(machine.abort_forced());
                }
                PartEffect::Finished { committed } => {
                    part.resolved = Some(committed);
                }
            }
        }
        if crash_after == Some(steps) {
            state.parts[i].up = false;
            state.parts[i].machine = None;
            state.parts[i].resolved = None;
        }
        steps
    }

    // ---- restart ---------------------------------------------------------

    /// Restarts the coordinator: rebuild the CT from the log, resume phase
    /// two if a `committing` record survives (§2.2.3), presume abort
    /// otherwise.
    fn restart_coord(&self, mut state: State) -> State {
        state.record("restart coordinator".to_string());
        state.coord.up = true;
        match state.coord.log.recovered_cstate(self.aid) {
            Some((true, _)) => {
                state.coord.done = true;
                state.coord.machine = None;
                state.coord.finished = Some(true);
            }
            Some((false, gids)) => {
                let (machine, effects) = Coordinator::resume_committing(self.aid, gids);
                state.coord.machine = Some(machine);
                for effect in effects {
                    if let CoordEffect::Send { to, msg } = effect {
                        state.inflight.push(Envelope {
                            from: COORD,
                            to,
                            msg,
                        });
                    }
                }
            }
            None => {
                // No trace: the action is forgotten; queries get "aborted".
                state.coord.machine = None;
                state.coord.done = false;
            }
        }
        state
    }

    /// Restarts a participant: rebuild the PT from the log; an in-doubt
    /// prepare resumes by querying the coordinator (§2.2.2).
    fn restart_part(&self, mut state: State, i: usize) -> State {
        state.record(format!("restart participant {}", i + 1));
        state.parts[i].up = true;
        match state.parts[i].log.recovered_pstate(self.aid) {
            Some(argus_core::PState::Prepared) => {
                let (machine, effects) = Participant::resume_in_doubt(self.aid, COORD);
                state.parts[i].machine = Some(machine);
                for effect in effects {
                    if let PartEffect::Send { to, msg } = effect {
                        state.inflight.push(Envelope {
                            from: GuardianId(i as u32 + 1),
                            to,
                            msg,
                        });
                    }
                }
            }
            Some(argus_core::PState::Committed) => {
                state.parts[i].machine = None;
                state.parts[i].resolved = Some(true);
            }
            Some(argus_core::PState::Aborted) => {
                state.parts[i].machine = None;
                state.parts[i].resolved = Some(false);
            }
            None => {
                state.parts[i].machine = None;
                state.parts[i].resolved = None;
            }
        }
        state
    }

    // ---- quiescent recovery ----------------------------------------------

    /// When the network is quiet, the timeout-driven moves fire: a preparing
    /// coordinator aborts unilaterally, a committing/aborting coordinator
    /// re-sends its verdict to the participants it is still awaiting, and an
    /// in-doubt participant re-queries the coordinator.
    fn quiesce(&self, mut state: State) -> State {
        state.record("quiesce (timeout moves fire)".to_string());
        if state.coord.up {
            if let Some(machine) = &mut state.coord.machine {
                match machine.phase() {
                    CoordPhase::Preparing => {
                        let effects: VecDeque<CoordEffect> = machine.abort_unilaterally().into();
                        self.run_coord_effects(&mut state, effects, None);
                    }
                    CoordPhase::Committing | CoordPhase::Aborting => {
                        let verdict_commit = machine.phase() == CoordPhase::Committing;
                        for to in machine.awaiting() {
                            state.inflight.push(Envelope {
                                from: COORD,
                                to,
                                msg: if verdict_commit {
                                    Msg::Commit { aid: self.aid }
                                } else {
                                    Msg::Abort { aid: self.aid }
                                },
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
        for i in 0..state.parts.len() {
            let in_doubt = state.parts[i]
                .machine
                .as_ref()
                .is_some_and(|m| m.phase() == PartPhase::Prepared);
            if state.parts[i].up && in_doubt {
                state.inflight.push(Envelope {
                    from: GuardianId(i as u32 + 1),
                    to: COORD,
                    msg: Msg::QueryOutcome { aid: self.aid },
                });
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_exploration_is_clean_and_deterministic() {
        let cfg = ExploreConfig {
            participants: 2,
            max_crashes: 1,
            max_drops: 0,
            max_states: 50_000,
            allow_refusal: false,
            eager_restarts: false,
        };
        let a = Explorer::new(cfg).run();
        a.assert_ok();
        assert!(a.stats.states_visited > 10);
        assert!(a.stats.terminal_states > 0);
        let b = Explorer::new(cfg).run();
        assert_eq!(a.stats.states_visited, b.stats.states_visited);
        assert_eq!(a.stats.dedup_pruned, b.stats.dedup_pruned);
    }

    #[test]
    fn eight_participant_exploration_is_clean() {
        // Sharded-world scale: a coordinator fanning out to 8 participants
        // (the E21 world's typical cross-shard spread) with a crash budget.
        // The state cap bounds the run; hitting it is coverage, not failure.
        let cfg = ExploreConfig {
            participants: 8,
            max_crashes: 1,
            max_drops: 0,
            max_states: 150_000,
            allow_refusal: true,
            eager_restarts: false,
        };
        let report = Explorer::new(cfg).run();
        report.assert_ok();
        assert!(report.stats.terminal_states > 0);
    }

    #[test]
    fn refusal_schedules_abort_cleanly() {
        let cfg = ExploreConfig {
            participants: 2,
            max_crashes: 0,
            max_drops: 0,
            max_states: 50_000,
            allow_refusal: true,
            eager_restarts: false,
        };
        let report = Explorer::new(cfg).run();
        report.assert_ok();
        assert!(report.stats.terminal_states > 0);
    }

    #[test]
    fn a_violation_dumps_the_failing_schedule() {
        // A hand-built bad state (a participant committed with no
        // coordinator commit point) must trip A1 and leave a schedule dump
        // whose path the violation text names.
        let mut ex = Explorer::new(ExploreConfig {
            participants: 1,
            ..ExploreConfig::default()
        });
        let mut state = ex.initial_state();
        state.record("deliver prepare 0->1".to_string());
        state.parts[0].log.append(LogEntry::Committed {
            aid: ex.aid,
            prev: None,
        });
        ex.check_state(&state);
        assert!(!ex.violations.is_empty());
        let v = &ex.violations[0];
        let marker = " [schedule: ";
        let start = v.find(marker).expect("violation names the dump") + marker.len();
        let path = std::path::PathBuf::from(&v[start..v.len() - 1]);
        assert!(path.exists(), "flight dump {} missing", path.display());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("deliver prepare 0->1"));
        assert!(text.contains("violation(s) at this state"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn eager_restart_schedules_are_clean() {
        // Eager restarts race recovery against stale in-flight messages —
        // the schedule class that exposed the stale-vote bug (an in-doubt
        // query answered "aborted" while the pre-crash vote was still in
        // flight, letting the coordinator commit afterwards). With the
        // coordinator fixed this must exhaust with zero violations.
        let cfg = ExploreConfig {
            participants: 1,
            max_crashes: 2,
            max_drops: 1,
            max_states: 50_000,
            allow_refusal: true,
            eager_restarts: true,
        };
        let report = Explorer::new(cfg).run();
        report.assert_ok();
        assert_eq!(report.stats.depth_limited, 0, "space must be exhausted");
        assert!(report.stats.crash_points > 0);
        assert!(report.stats.terminal_states > 0);
    }
}
