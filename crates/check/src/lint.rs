//! The static log linter: the invariant catalogue I1–I10.
//!
//! Every invariant is a structural property of the log image alone — no
//! recovery pass, no heap, no device. The catalogue (documented with thesis
//! citations in DESIGN.md):
//!
//! * **I1 well-formed** — every record decodes as a [`LogEntry`] and device
//!   sequence numbers are contiguous from zero (§3.2: the log is an
//!   append-only sequence; a skipped sequence number means a lost record).
//! * **I2 chain terminates** — walking `prev` from the chain head, addresses
//!   strictly decrease and the walk ends at `None` (§4.2: the backward chain
//!   of outcome entries; a cycle or a dangling pointer would hang recovery).
//! * **I3 chain complete** — every entry on the chain is an outcome entry,
//!   and every outcome entry in the log is reachable from the head (§4.3.3:
//!   recovery sees exactly the outcome entries on the chain).
//! * **I4 outcomes matched** — every `committed`/`aborted` has a `prepared`
//!   (or `prepared_data`) for the same action at a lower address (§3.3.2:
//!   a participant logs its prepare before any verdict can arrive).
//! * **I5 verdicts consistent** — no action has both a `committed` and an
//!   `aborted` entry (§2.2.1: the verdict is final).
//! * **I6 coordinator paired** — every `done` has a `committing` at a lower
//!   address (§2.2.1: `done` only after phase two of a logged commit).
//! * **I7 shadow map resolves** — every `(uid, address)` pair in a
//!   `prepared` entry or `committed_ss` checkpoint points at a data entry
//!   at a strictly lower address (§4.2: the distributed shadowing map).
//! * **I8 uids unique** — no uid appears twice within one pair list (§4.3.2:
//!   one version per object per prepare / per checkpoint).
//! * **I9 accessibility closed** — the restorable object set is closed under
//!   references: every uid reachable from a restored value is itself
//!   restorable (§3.3.3.2: the accessibility set invariant).
//! * **I10 tables agree** — PT/CT/OT reconstructed independently by the
//!   checker match what [`argus_core`]'s own recovery produced (only checked
//!   by [`lint_log_against`]).
//! * **I11 no stale locks** — the one heap-level invariant: in a quiesced
//!   world no atomic object retains a read/write lock or a buffered current
//!   version owned by a non-live action, and no mutex stays seized by one
//!   (§2.4.1: locks are released exactly at commit or abort). Checked by
//!   [`lint_heap_quiesced`] over a volatile [`Heap`], not a log image.
//! * **I12 trace consistent** — the one trace-level invariant: every span
//!   the instrumentation opened also closes, event times are monotone per
//!   guardian lane, and every cross-guardian flow edge that arrives was
//!   sent. Checked by [`lint_trace`] over an `argus_trace::Tracer`, not a
//!   log image.

use crate::image::LogImage;
use crate::obs::LintObs;
use argus_core::{CState, LogEntry, ObjState, PState, RecoveryOutcome};
use argus_objects::{ActionId, Heap, ObjKind, ObjRef, ObjectBody, Uid, Value};
use argus_slog::LogAddress;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// Which log organization the image appears to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Chained outcome entries, anonymous data entries, shadow-map pairs
    /// (ch. 4). Detected when any outcome entry carries a `prev` pointer or
    /// any `data_h` / `committed_ss` entry is present.
    Hybrid,
    /// Flat unchained log with self-describing data entries (ch. 3).
    Simple,
    /// REDO-only log with per-object backlinked data entries and chain-head
    /// checkpoints. Detected when any `data_r` entry is present (checked
    /// first: redo logs also carry `committed_ss` checkpoints), or when a
    /// checkpoint appears without any hybrid chaining.
    Redo,
}

impl fmt::Display for Flavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Flavor::Hybrid => "hybrid",
            Flavor::Simple => "simple",
            Flavor::Redo => "redo",
        })
    }
}

/// One invariant of the catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Invariant {
    /// Every record decodes; sequence numbers are contiguous from zero.
    I1WellFormed,
    /// The outcome chain strictly decreases and terminates.
    I2ChainTerminates,
    /// The chain holds outcome entries only, and holds all of them.
    I3ChainComplete,
    /// Every participant verdict has a matching prepare below it.
    I4OutcomeMatched,
    /// No action both committed and aborted.
    I5VerdictConsistent,
    /// Every `done` has a `committing` below it.
    I6CoordinatorPaired,
    /// Every shadow-map pair points at a data entry at a lower address.
    I7ShadowResolves,
    /// Uids are unique within one pair list.
    I8UidsUnique,
    /// The restorable set is closed under references.
    I9AccessClosed,
    /// Checker-reconstructed PT/CT/OT agree with `core`'s recovery.
    I10TablesAgree,
    /// No quiesced heap object retains a lock of a non-live action.
    I11NoStaleLocks,
    /// The recorded trace is self-consistent: spans close, per-guardian
    /// times are monotone, cross-guardian flow edges resolve.
    I12TraceConsistent,
}

impl Invariant {
    /// All invariants, in catalogue order.
    pub const ALL: [Invariant; 12] = [
        Invariant::I1WellFormed,
        Invariant::I2ChainTerminates,
        Invariant::I3ChainComplete,
        Invariant::I4OutcomeMatched,
        Invariant::I5VerdictConsistent,
        Invariant::I6CoordinatorPaired,
        Invariant::I7ShadowResolves,
        Invariant::I8UidsUnique,
        Invariant::I9AccessClosed,
        Invariant::I10TablesAgree,
        Invariant::I11NoStaleLocks,
        Invariant::I12TraceConsistent,
    ];

    /// The catalogue code ("I1" … "I10").
    pub fn code(&self) -> &'static str {
        match self {
            Invariant::I1WellFormed => "I1",
            Invariant::I2ChainTerminates => "I2",
            Invariant::I3ChainComplete => "I3",
            Invariant::I4OutcomeMatched => "I4",
            Invariant::I5VerdictConsistent => "I5",
            Invariant::I6CoordinatorPaired => "I6",
            Invariant::I7ShadowResolves => "I7",
            Invariant::I8UidsUnique => "I8",
            Invariant::I9AccessClosed => "I9",
            Invariant::I10TablesAgree => "I10",
            Invariant::I11NoStaleLocks => "I11",
            Invariant::I12TraceConsistent => "I12",
        }
    }

    /// A one-line description.
    pub fn title(&self) -> &'static str {
        match self {
            Invariant::I1WellFormed => "every record decodes; sequence numbers are contiguous",
            Invariant::I2ChainTerminates => "the outcome chain strictly decreases and terminates",
            Invariant::I3ChainComplete => "the chain holds exactly the outcome entries",
            Invariant::I4OutcomeMatched => "every verdict has a matching prepare below it",
            Invariant::I5VerdictConsistent => "no action both committed and aborted",
            Invariant::I6CoordinatorPaired => "every done has a committing below it",
            Invariant::I7ShadowResolves => "every shadow pair points at a lower data entry",
            Invariant::I8UidsUnique => "uids are unique within one pair list",
            Invariant::I9AccessClosed => "the restorable set is closed under references",
            Invariant::I10TablesAgree => "reconstructed PT/CT/OT agree with core recovery",
            Invariant::I11NoStaleLocks => "no quiesced object keeps a lock of a non-live action",
            Invariant::I12TraceConsistent => {
                "spans close, per-guardian times are monotone, flows resolve"
            }
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code(), self.title())
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated invariant.
    pub invariant: Invariant,
    /// The log address the violation anchors to, when one exists.
    pub addr: Option<LogAddress>,
    /// What exactly is wrong.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.addr {
            Some(a) => write!(f, "[{}] at {a}: {}", self.invariant.code(), self.detail),
            None => write!(f, "[{}] {}", self.invariant.code(), self.detail),
        }
    }
}

/// The linter's verdict on one log image.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// The detected log organization.
    pub flavor: Flavor,
    /// Decoded entries examined.
    pub entries: usize,
    /// Outcome entries among them.
    pub outcomes: usize,
    /// Everything that is wrong, in detection order.
    pub violations: Vec<Violation>,
}

impl LintReport {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether a specific invariant was violated.
    pub fn has(&self, invariant: Invariant) -> bool {
        self.violations.iter().any(|v| v.invariant == invariant)
    }

    /// Panics with the full report if any invariant was violated — the
    /// one-liner scenario tests call after their final crash/recover cycle.
    #[track_caller]
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "log lint failed ({} violation(s)):\n{}",
            self.violations.len(),
            self.to_table()
        );
    }

    /// Renders the report as an `argus-obs` table (what `argus-lint` prints).
    pub fn to_table(&self) -> argus_obs::Table {
        let mut t = argus_obs::Table::new(format!(
            "lint: {} log, {} entries ({} outcome), {} violation(s)",
            self.flavor,
            self.entries,
            self.outcomes,
            self.violations.len()
        ));
        t.header(["invariant", "address", "detail"]);
        for v in &self.violations {
            t.row([
                v.invariant.code().to_string(),
                v.addr.map(|a| a.to_string()).unwrap_or_else(|| "-".into()),
                v.detail.clone(),
            ]);
        }
        t
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

/// Lints a log image against I1–I9.
pub fn lint_log(image: &LogImage) -> LintReport {
    Linter::new(image).run(None)
}

/// Lints a log image against I1–I10: everything [`lint_log`] checks, plus
/// agreement between the checker's independently reconstructed PT/CT/OT and
/// the [`RecoveryOutcome`] an actual `core` recovery pass produced.
pub fn lint_log_against(image: &LogImage, outcome: &RecoveryOutcome) -> LintReport {
    Linter::new(image).run(Some(outcome))
}

/// Lints a volatile heap against I11: in a quiesced world — no action
/// running, none parked on a lock queue, none awaiting a 2PC verdict — no
/// atomic object may retain a read or write lock (or a buffered current
/// version) owned by an action outside `live`, and no mutex may stay seized
/// by one. `live` is whatever the caller still considers active; recovery
/// legitimately re-grants write locks to in-doubt prepared actions, so those
/// must be included. Returns the violations (empty when clean).
pub fn lint_heap_quiesced(heap: &Heap, live: &BTreeSet<ActionId>) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut flag = |detail: String| {
        out.push(Violation {
            invariant: Invariant::I11NoStaleLocks,
            addr: None,
            detail,
        });
    };
    for (_, slot) in heap.iter() {
        let uid = slot.uid;
        match &slot.body {
            ObjectBody::Atomic(obj) => {
                if let Some(w) = obj.writer {
                    if !live.contains(&w) {
                        flag(format!("{uid} keeps a write lock of non-live {w}"));
                    }
                }
                for r in &obj.readers {
                    if !live.contains(r) {
                        flag(format!("{uid} keeps a read lock of non-live {r}"));
                    }
                }
                if obj.current.is_some() && obj.writer.is_none() {
                    flag(format!("{uid} buffers a current version with no writer"));
                }
            }
            ObjectBody::Mutex(obj) => {
                if let Some(s) = obj.seized_by {
                    if !live.contains(&s) {
                        flag(format!("{uid} stays seized by non-live {s}"));
                    }
                }
            }
        }
    }
    out
}

/// Lints a recorded trace against I12: every opened span closes, timestamps
/// are monotone per guardian lane, and every cross-guardian flow edge
/// resolves (see `argus_trace::lint_events` for the precise rules — a
/// truncated trace skips the completeness checks). Returns the violations
/// (empty when clean).
pub fn lint_trace(tracer: &argus_trace::Tracer) -> Vec<Violation> {
    argus_trace::lint_events(&tracer.events(), tracer.dropped() > 0)
        .into_iter()
        .map(|detail| Violation {
            invariant: Invariant::I12TraceConsistent,
            addr: None,
            detail,
        })
        .collect()
}

/// Panics with every violation listed if [`lint_trace`] found any.
#[track_caller]
pub fn assert_trace_consistent(tracer: &argus_trace::Tracer) {
    let violations = lint_trace(tracer);
    assert!(
        violations.is_empty(),
        "trace lint failed ({} violation(s)):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Panics with every violation listed if [`lint_heap_quiesced`] found any.
#[track_caller]
pub fn assert_heap_quiesced(heap: &Heap, live: &BTreeSet<ActionId>) {
    let violations = lint_heap_quiesced(heap, live);
    assert!(
        violations.is_empty(),
        "heap lint failed ({} violation(s)):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Detects the log organization of an image (see [`Flavor`]).
pub fn detect_flavor(image: &LogImage) -> Flavor {
    // Backlinked data entries are unique to the redo organization; check
    // first, because redo logs also carry `committed_ss` checkpoints.
    if image
        .entries()
        .iter()
        .any(|(_, e)| matches!(e, LogEntry::DataR { .. }))
    {
        return Flavor::Redo;
    }
    let chained = image.entries().iter().any(|(_, e)| {
        // `committed_ss` is excluded from the outcome-with-prev test: a
        // compacted redo checkpoint reuses `prev` as its low-water mark,
        // which is not hybrid chaining.
        matches!(e, LogEntry::DataH { .. })
            || (e.is_outcome() && !matches!(e, LogEntry::CommittedSs { .. }) && e.prev().is_some())
            || matches!(e, LogEntry::Prepared { pairs, .. } if !pairs.is_empty())
    });
    if chained {
        return Flavor::Hybrid;
    }
    // A checkpoint with no hybrid chaining anywhere: a freshly compacted
    // redo log whose every surviving data record was a base (simple logs
    // never write checkpoints).
    if image
        .entries()
        .iter()
        .any(|(_, e)| matches!(e, LogEntry::CommittedSs { .. }))
    {
        return Flavor::Redo;
    }
    Flavor::Simple
}

// ---- the linter ----------------------------------------------------------

struct Linter<'a> {
    image: &'a LogImage,
    flavor: Flavor,
    violations: Vec<Violation>,
}

impl<'a> Linter<'a> {
    fn new(image: &'a LogImage) -> Self {
        Self {
            image,
            flavor: detect_flavor(image),
            violations: Vec::new(),
        }
    }

    fn flag(&mut self, invariant: Invariant, addr: Option<LogAddress>, detail: String) {
        self.violations.push(Violation {
            invariant,
            addr,
            detail,
        });
    }

    fn run(mut self, outcome: Option<&RecoveryOutcome>) -> LintReport {
        let obs = LintObs::resolve();
        obs.runs.inc();
        self.check_well_formed();
        let chain = match self.flavor {
            Flavor::Hybrid => self.check_chain(),
            // The simple and redo logs have no outcome chain; recovery is a
            // flat backward scan.
            Flavor::Simple | Flavor::Redo => Vec::new(),
        };
        self.check_outcome_matching();
        self.check_verdict_consistency();
        self.check_coordinator_pairing();
        self.check_shadow_map();
        if self.flavor == Flavor::Redo {
            self.check_backlinks();
        }
        let recon = match self.flavor {
            Flavor::Hybrid => self.reconstruct_hybrid(&chain),
            Flavor::Simple => self.reconstruct_simple(),
            Flavor::Redo => self.reconstruct_redo(),
        };
        self.check_access_closure(&recon);
        if let Some(outcome) = outcome {
            self.check_table_agreement(&recon, outcome);
        }
        obs.violations.add(self.violations.len() as u64);
        LintReport {
            flavor: self.flavor,
            entries: self.image.len(),
            outcomes: self
                .image
                .entries()
                .iter()
                .filter(|(_, e)| e.is_outcome())
                .count(),
            violations: self.violations,
        }
    }

    // ---- I1 --------------------------------------------------------------

    fn check_well_formed(&mut self) {
        for bad in self.image.bad_records() {
            self.flag(
                Invariant::I1WellFormed,
                Some(bad.addr),
                format!("record does not decode: {}", bad.why),
            );
        }
        // Forced records always carry sequence numbers 0, 1, 2, … — a gap
        // means a record was lost (an epoch was skipped). Only meaningful
        // when every record decoded; undecodable records leave holes.
        if self.image.bad_records().is_empty() {
            if let Some(seqs) = self.image.seqs() {
                for (i, (&seq, (addr, _))) in seqs.iter().zip(self.image.entries()).enumerate() {
                    if seq != i as u64 {
                        self.flag(
                            Invariant::I1WellFormed,
                            Some(*addr),
                            format!("sequence number {seq} where {i} was expected"),
                        );
                        break;
                    }
                }
            }
        }
    }

    // ---- I2 / I3 ---------------------------------------------------------

    /// Walks the backward chain, reporting I2 breaks, and returns the chain
    /// as `(address, entry)` newest-first — the reconstruction's input.
    fn check_chain(&mut self) -> Vec<(LogAddress, &'a LogEntry)> {
        let mut chain = Vec::new();
        let mut reachable: HashSet<u64> = HashSet::new();
        let mut cursor = self.image.chain_head();
        while let Some(addr) = cursor {
            let entry = match self.image.get(addr) {
                Some(e) => e,
                None => {
                    self.flag(
                        Invariant::I2ChainTerminates,
                        Some(addr),
                        "chain pointer dangles: no entry at this address".into(),
                    );
                    break;
                }
            };
            if !entry.is_outcome() {
                self.flag(
                    Invariant::I3ChainComplete,
                    Some(addr),
                    format!("{} (data) entry on the outcome chain", entry.name()),
                );
                break;
            }
            reachable.insert(addr.offset());
            chain.push((addr, entry));
            cursor = match entry.prev() {
                Some(prev) if prev.offset() >= addr.offset() => {
                    self.flag(
                        Invariant::I2ChainTerminates,
                        Some(addr),
                        format!("chain pointer {prev} does not decrease (entry is at {addr})"),
                    );
                    break;
                }
                next => next,
            };
        }
        // Every outcome entry must be ON the chain (I3) — a skipped entry is
        // invisible to recovery.
        for (addr, entry) in self.image.entries() {
            if entry.is_outcome() && !reachable.contains(&addr.offset()) {
                self.flag(
                    Invariant::I3ChainComplete,
                    Some(*addr),
                    format!("{} entry not reachable from the chain head", entry.name()),
                );
            }
        }
        chain
    }

    // ---- I4 --------------------------------------------------------------

    fn check_outcome_matching(&mut self) {
        // Lowest prepare address per action.
        let mut first_prepare: HashMap<ActionId, LogAddress> = HashMap::new();
        for (addr, entry) in self.image.entries() {
            if let LogEntry::Prepared { aid, .. } | LogEntry::PreparedData { aid, .. } = entry {
                first_prepare.entry(*aid).or_insert(*addr);
            }
        }
        for (addr, entry) in self.image.entries() {
            if let LogEntry::Committed { aid, .. } | LogEntry::Aborted { aid, .. } = entry {
                match first_prepare.get(aid) {
                    Some(p) if p.offset() < addr.offset() => {}
                    _ => self.flag(
                        Invariant::I4OutcomeMatched,
                        Some(*addr),
                        format!("{} for {aid} has no prepared entry below it", entry.name()),
                    ),
                }
            }
        }
    }

    // ---- I5 --------------------------------------------------------------

    fn check_verdict_consistency(&mut self) {
        let mut committed: HashMap<ActionId, LogAddress> = HashMap::new();
        let mut aborted: HashMap<ActionId, LogAddress> = HashMap::new();
        for (addr, entry) in self.image.entries() {
            match entry {
                LogEntry::Committed { aid, .. } => {
                    committed.entry(*aid).or_insert(*addr);
                }
                LogEntry::Aborted { aid, .. } => {
                    aborted.entry(*aid).or_insert(*addr);
                }
                _ => {}
            }
        }
        let mut both: Vec<_> = committed
            .iter()
            .filter(|(aid, _)| aborted.contains_key(aid))
            .collect();
        both.sort_by_key(|(aid, _)| **aid);
        for (aid, caddr) in both {
            self.flag(
                Invariant::I5VerdictConsistent,
                Some(*caddr),
                format!(
                    "{aid} has both committed (at {caddr}) and aborted (at {}) entries",
                    aborted[aid]
                ),
            );
        }
    }

    // ---- I6 --------------------------------------------------------------

    fn check_coordinator_pairing(&mut self) {
        let mut first_committing: HashMap<ActionId, LogAddress> = HashMap::new();
        for (addr, entry) in self.image.entries() {
            if let LogEntry::Committing { aid, .. } = entry {
                first_committing.entry(*aid).or_insert(*addr);
            }
        }
        for (addr, entry) in self.image.entries() {
            if let LogEntry::Done { aid, .. } = entry {
                match first_committing.get(aid) {
                    Some(c) if c.offset() < addr.offset() => {}
                    _ => self.flag(
                        Invariant::I6CoordinatorPaired,
                        Some(*addr),
                        format!("done for {aid} has no committing entry below it"),
                    ),
                }
            }
        }
    }

    // ---- I7 / I8 ---------------------------------------------------------

    fn check_shadow_map(&mut self) {
        type PairList<'x> = (LogAddress, &'static str, &'x [(Uid, LogAddress)]);
        let lists: Vec<PairList<'_>> = self
            .image
            .entries()
            .iter()
            .filter_map(|(addr, entry)| match entry {
                LogEntry::Prepared { pairs, .. } => Some((*addr, "prepared", pairs.as_slice())),
                LogEntry::CommittedSs { cssl, .. } => {
                    Some((*addr, "committed_ss", cssl.as_slice()))
                }
                _ => None,
            })
            .collect();
        for (addr, name, pairs) in lists {
            let mut seen: BTreeSet<Uid> = BTreeSet::new();
            for (uid, daddr) in pairs {
                if !seen.insert(*uid) {
                    self.flag(
                        Invariant::I8UidsUnique,
                        Some(addr),
                        format!("{name} entry lists {uid} more than once"),
                    );
                }
                if daddr.offset() >= addr.offset() {
                    self.flag(
                        Invariant::I7ShadowResolves,
                        Some(addr),
                        format!("{name} pair for {uid} points at {daddr}, not below the entry"),
                    );
                    continue;
                }
                match self.image.get(*daddr) {
                    Some(LogEntry::Data { .. }) | Some(LogEntry::DataH { .. }) => {}
                    // Redo checkpoints map uids to chain heads, which may be
                    // any committed-version-bearing record of the same uid.
                    Some(
                        LogEntry::DataR { uid: u2, .. }
                        | LogEntry::BaseCommitted { uid: u2, .. }
                        | LogEntry::PreparedData { uid: u2, .. },
                    ) if self.flavor == Flavor::Redo => {
                        if u2 != uid {
                            self.flag(
                                Invariant::I7ShadowResolves,
                                Some(addr),
                                format!("{name} pair for {uid} points at a record for {u2}"),
                            );
                        }
                    }
                    Some(other) => self.flag(
                        Invariant::I7ShadowResolves,
                        Some(addr),
                        format!(
                            "{name} pair for {uid} points at a {} entry at {daddr}",
                            other.name()
                        ),
                    ),
                    None => self.flag(
                        Invariant::I7ShadowResolves,
                        Some(addr),
                        format!("{name} pair for {uid} dangles: no entry at {daddr}"),
                    ),
                }
            }
        }
    }

    // ---- reconstruction (feeds I9 and I10) -------------------------------

    /// Resolves a shadow pair to its data entry, or `None` if it does not
    /// resolve (already reported under I7).
    fn data_at(&self, daddr: LogAddress) -> Option<(ObjKind, &'a Value)> {
        match self.image.get(daddr)? {
            LogEntry::DataH { kind, value } => Some((*kind, value)),
            LogEntry::Data { kind, value, .. } => Some((*kind, value)),
            _ => None,
        }
    }

    /// Mirrors the hybrid chain walk of `core::HybridLogRs::recover`
    /// (§4.3.3) without a heap: same tables, same restore rules, same
    /// selective pair processing.
    fn reconstruct_hybrid(&mut self, chain: &[(LogAddress, &'a LogEntry)]) -> Reconstruction {
        let mut r = Reconstruction::default();
        for &(_, entry) in chain {
            match entry {
                LogEntry::Prepared { aid, pairs, .. } => {
                    let st = r.pt_enter(*aid, PState::Prepared);
                    for (uid, daddr) in pairs {
                        let Some((kind, value)) = self.data_at(*daddr) else {
                            continue;
                        };
                        match st {
                            PState::Committed => {
                                r.restore_committed(*uid, kind, value, Some(*daddr))
                            }
                            PState::Prepared => {
                                r.restore_prepared(*uid, kind, value, *aid, Some(*daddr))
                            }
                            // Mutex versions of a prepared-then-aborted
                            // action are still restored (§2.4.2 scenario 2).
                            PState::Aborted if kind == ObjKind::Mutex => {
                                r.restore_committed(*uid, kind, value, Some(*daddr))
                            }
                            PState::Aborted => {}
                        }
                    }
                }
                LogEntry::Committed { aid, .. } => {
                    r.pt_enter(*aid, PState::Committed);
                }
                LogEntry::Aborted { aid, .. } => {
                    r.pt_enter(*aid, PState::Aborted);
                }
                LogEntry::Committing { aid, gids, .. } => {
                    r.ct_enter(*aid, CState::Committing(gids.clone()));
                }
                LogEntry::Done { aid, .. } => r.ct_enter(*aid, CState::Done),
                LogEntry::BaseCommitted { uid, value, .. } => {
                    r.restore_committed(*uid, ObjKind::Atomic, value, None);
                }
                LogEntry::PreparedData {
                    uid, value, aid, ..
                } => r.on_prepared_data(*uid, value, *aid),
                LogEntry::CommittedSs { cssl, .. } => {
                    for (uid, daddr) in cssl {
                        // Core's checkpoint rule: a resident object that is
                        // not awaiting its base is simply newer — skip.
                        if r.objects
                            .get(uid)
                            .is_some_and(|o| o.state != ObjState::Prepared)
                        {
                            continue;
                        }
                        let Some((kind, value)) = self.data_at(*daddr) else {
                            continue;
                        };
                        r.restore_committed(*uid, kind, value, Some(*daddr));
                    }
                }
                LogEntry::Data { .. } | LogEntry::DataH { .. } | LogEntry::DataR { .. } => {
                    // Already reported as an I3 break; the walk stopped there.
                }
            }
        }
        for v in r.take_kind_conflicts() {
            self.violations.push(v);
        }
        r
    }

    /// Mirrors the simple flat backward scan of `core::SimpleLogRs::recover`
    /// (§3.4.4) without a heap.
    fn reconstruct_simple(&mut self) -> Reconstruction {
        let mut r = Reconstruction::default();
        let mut deferred_cssl: Vec<(Uid, LogAddress)> = Vec::new();
        for (addr, entry) in self.image.entries().iter().rev() {
            match entry {
                LogEntry::Prepared { aid, .. } => {
                    r.pt_enter(*aid, PState::Prepared);
                }
                LogEntry::Committed { aid, .. } => {
                    r.pt_enter(*aid, PState::Committed);
                }
                LogEntry::Aborted { aid, .. } => {
                    r.pt_enter(*aid, PState::Aborted);
                }
                LogEntry::Committing { aid, gids, .. } => {
                    r.ct_enter(*aid, CState::Committing(gids.clone()));
                }
                LogEntry::Done { aid, .. } => r.ct_enter(*aid, CState::Done),
                LogEntry::BaseCommitted { uid, value, .. } => {
                    r.restore_committed(*uid, ObjKind::Atomic, value, None);
                }
                LogEntry::PreparedData {
                    uid, value, aid, ..
                } => r.on_prepared_data(*uid, value, *aid),
                // The simple scan reads a redo record as a plain data entry.
                LogEntry::Data {
                    uid,
                    kind,
                    value,
                    aid,
                }
                | LogEntry::DataR {
                    uid,
                    kind,
                    value,
                    aid,
                    ..
                } => match r.pt.get(aid).copied() {
                    Some(PState::Committed) => r.restore_committed(*uid, *kind, value, Some(*addr)),
                    Some(PState::Prepared) => {
                        r.restore_prepared(*uid, *kind, value, *aid, Some(*addr))
                    }
                    Some(PState::Aborted) if *kind == ObjKind::Mutex => {
                        r.restore_committed(*uid, *kind, value, Some(*addr))
                    }
                    Some(PState::Aborted) | None => {}
                },
                LogEntry::DataH { .. } => {}
                LogEntry::CommittedSs { cssl, .. } => deferred_cssl.extend(cssl.iter().copied()),
            }
        }
        for (uid, daddr) in deferred_cssl {
            if r.objects.get(&uid).map(|o| o.state) == Some(ObjState::Restored) {
                continue;
            }
            if let Some((kind, value)) = self.data_at(daddr) {
                r.restore_committed(uid, kind, value, Some(daddr));
            }
        }
        for v in r.take_kind_conflicts() {
            self.violations.push(v);
        }
        r
    }

    // ---- I7 for the redo organization ------------------------------------

    /// Backlinks are the redo log's shadow-map analogue: every `data_r`
    /// backlink must point strictly below at a data-carrying record of the
    /// *same* object, or a lazy chain walk would restore the wrong state.
    fn check_backlinks(&mut self) {
        type Link = (LogAddress, Uid, LogAddress);
        let links: Vec<Link> = self
            .image
            .entries()
            .iter()
            .filter_map(|(addr, entry)| match entry {
                LogEntry::DataR {
                    uid, back: Some(b), ..
                } => Some((*addr, *uid, *b)),
                _ => None,
            })
            .collect();
        for (addr, uid, back) in links {
            if back.offset() >= addr.offset() {
                self.flag(
                    Invariant::I7ShadowResolves,
                    Some(addr),
                    format!("backlink for {uid} points at {back}, not below the entry"),
                );
                continue;
            }
            match self.image.get(back) {
                Some(
                    LogEntry::DataR { uid: u2, .. }
                    | LogEntry::Data { uid: u2, .. }
                    | LogEntry::BaseCommitted { uid: u2, .. }
                    | LogEntry::PreparedData { uid: u2, .. },
                ) => {
                    if *u2 != uid {
                        self.flag(
                            Invariant::I7ShadowResolves,
                            Some(addr),
                            format!("backlink for {uid} points at a record for {u2} at {back}"),
                        );
                    }
                }
                Some(other) => self.flag(
                    Invariant::I7ShadowResolves,
                    Some(addr),
                    format!(
                        "backlink for {uid} points at a {} entry at {back}",
                        other.name()
                    ),
                ),
                None => self.flag(
                    Invariant::I7ShadowResolves,
                    Some(addr),
                    format!("backlink for {uid} dangles: no entry at {back}"),
                ),
            }
        }
    }

    /// Resolves a redo checkpoint pair to the committed version its record
    /// carries, or `None` if it does not (already reported under I7).
    fn redo_head_at(&self, daddr: LogAddress) -> Option<(ObjKind, &'a Value)> {
        match self.image.get(daddr)? {
            LogEntry::DataR { kind, value, .. } => Some((*kind, value)),
            LogEntry::Data { kind, value, .. } => Some((*kind, value)),
            LogEntry::BaseCommitted { value, .. } => Some((ObjKind::Atomic, value)),
            LogEntry::PreparedData { value, .. } => Some((ObjKind::Atomic, value)),
            _ => None,
        }
    }

    /// Mirrors the redo full scan of `core::RedoRs::recover` without a
    /// heap: a flat backward pass with participant-table dispatch, plus the
    /// deferred checkpoint restore.
    fn reconstruct_redo(&mut self) -> Reconstruction {
        let mut r = Reconstruction::default();
        let mut deferred_cssl: Vec<(Uid, LogAddress)> = Vec::new();
        for (addr, entry) in self.image.entries().iter().rev() {
            match entry {
                LogEntry::Prepared { aid, .. } => {
                    r.pt_enter(*aid, PState::Prepared);
                }
                LogEntry::Committed { aid, .. } => {
                    r.pt_enter(*aid, PState::Committed);
                }
                LogEntry::Aborted { aid, .. } => {
                    r.pt_enter(*aid, PState::Aborted);
                }
                LogEntry::Committing { aid, gids, .. } => {
                    r.ct_enter(*aid, CState::Committing(gids.clone()));
                }
                LogEntry::Done { aid, .. } => r.ct_enter(*aid, CState::Done),
                LogEntry::BaseCommitted { uid, value, .. } => {
                    r.restore_committed(*uid, ObjKind::Atomic, value, None);
                }
                LogEntry::PreparedData {
                    uid, value, aid, ..
                } => r.on_prepared_data(*uid, value, *aid),
                LogEntry::DataR {
                    uid,
                    kind,
                    value,
                    aid,
                    ..
                }
                | LogEntry::Data {
                    uid,
                    kind,
                    value,
                    aid,
                } => match r.pt.get(aid).copied() {
                    Some(PState::Committed) => r.restore_committed(*uid, *kind, value, Some(*addr)),
                    Some(PState::Prepared) => {
                        r.restore_prepared(*uid, *kind, value, *aid, Some(*addr))
                    }
                    Some(PState::Aborted) if *kind == ObjKind::Mutex => {
                        r.restore_committed(*uid, *kind, value, Some(*addr))
                    }
                    Some(PState::Aborted) | None => {}
                },
                LogEntry::DataH { .. } => {}
                LogEntry::CommittedSs { cssl, .. } => deferred_cssl.extend(cssl.iter().copied()),
            }
        }
        for (uid, daddr) in deferred_cssl {
            if r.objects.get(&uid).map(|o| o.state) == Some(ObjState::Restored) {
                continue;
            }
            if let Some((kind, value)) = self.redo_head_at(daddr) {
                r.restore_committed(uid, kind, value, Some(daddr));
            }
        }
        for v in r.take_kind_conflicts() {
            self.violations.push(v);
        }
        r
    }

    // ---- I9 --------------------------------------------------------------

    fn check_access_closure(&mut self, recon: &Reconstruction) {
        for (uid, obj) in &recon.objects {
            for value in obj.base.iter().chain(obj.current.iter()) {
                let mut refs = Vec::new();
                collect_uid_refs(value, &mut refs);
                for target in refs {
                    if !recon.objects.contains_key(&target) {
                        self.flag(
                            Invariant::I9AccessClosed,
                            None,
                            format!("restored {uid} references {target}, which is not restorable"),
                        );
                    }
                }
            }
        }
    }

    // ---- I10 -------------------------------------------------------------

    fn check_table_agreement(&mut self, recon: &Reconstruction, outcome: &RecoveryOutcome) {
        // PT.
        let mut core_pt: BTreeMap<ActionId, PState> = BTreeMap::new();
        for (aid, st) in outcome.pt.iter() {
            core_pt.insert(*aid, *st);
        }
        if recon.pt != core_pt {
            self.flag(
                Invariant::I10TablesAgree,
                None,
                format!(
                    "participant tables disagree: checker {:?}, core {:?}",
                    recon.pt, core_pt
                ),
            );
        }
        // CT.
        let mut core_ct: BTreeMap<ActionId, CState> = BTreeMap::new();
        for (aid, st) in outcome.ct.iter() {
            core_ct.insert(*aid, st.clone());
        }
        if recon.ct != core_ct {
            self.flag(
                Invariant::I10TablesAgree,
                None,
                format!(
                    "coordinator tables disagree: checker {:?}, core {:?}",
                    recon.ct, core_ct
                ),
            );
        }
        // OT: uid set, object states, mutex recency addresses.
        let core_ot: BTreeMap<Uid, (ObjState, Option<LogAddress>)> = outcome
            .ot
            .iter()
            .map(|(uid, e)| (*uid, (e.state, e.mutex_addr)))
            .collect();
        let recon_ot: BTreeMap<Uid, (ObjState, Option<LogAddress>)> = recon
            .objects
            .iter()
            .map(|(uid, o)| (*uid, (o.state, o.mutex_addr)))
            .collect();
        if recon_ot != core_ot {
            for (uid, entry) in &recon_ot {
                match core_ot.get(uid) {
                    Some(core) if core == entry => {}
                    Some(core) => self.flag(
                        Invariant::I10TablesAgree,
                        None,
                        format!(
                            "object tables disagree on {uid}: checker {entry:?}, core {core:?}"
                        ),
                    ),
                    None => self.flag(
                        Invariant::I10TablesAgree,
                        None,
                        format!("checker restored {uid} but core did not"),
                    ),
                }
            }
            for uid in core_ot.keys() {
                if !recon_ot.contains_key(uid) {
                    self.flag(
                        Invariant::I10TablesAgree,
                        None,
                        format!("core restored {uid} but the checker did not"),
                    );
                }
            }
        }
    }
}

/// Collects every `Value::Ref(Uid)` reachable inside a flattened value.
fn collect_uid_refs(value: &Value, out: &mut Vec<Uid>) {
    match value {
        Value::Ref(ObjRef::Uid(u)) => out.push(*u),
        Value::Seq(items) => {
            for item in items {
                collect_uid_refs(item, out);
            }
        }
        _ => {}
    }
}

// ---- pure table reconstruction -------------------------------------------

/// A reconstructed object: the heap-free mirror of `core`'s `OtEntry` plus
/// the restored values (needed for the I9 closure walk).
#[derive(Debug, Clone)]
pub struct ReconObj {
    /// Atomic or mutex.
    pub kind: ObjKind,
    /// Restoration state — `Prepared` while the base version is missing.
    pub state: ObjState,
    /// For mutexes: the address of the version copied (the §4.4 recency
    /// tiebreak).
    pub mutex_addr: Option<LogAddress>,
    /// Base version (mutexes keep their single version here).
    pub base: Option<Value>,
    /// Current version of an in-doubt prepared action.
    pub current: Option<Value>,
    /// The in-doubt writer holding the lock.
    pub writer: Option<ActionId>,
}

/// PT/CT/OT rebuilt purely from the image, mirroring `core::restore`'s rules
/// exactly but without a heap. [`lint_log_against`] compares this against a
/// real [`RecoveryOutcome`]; the I9 closure check walks its values.
#[derive(Debug, Clone, Default)]
pub struct Reconstruction {
    /// Participant table: first insertion (newest entry) wins.
    pub pt: BTreeMap<ActionId, PState>,
    /// Coordinator table: first insertion wins.
    pub ct: BTreeMap<ActionId, CState>,
    /// Object table with values.
    pub objects: BTreeMap<Uid, ReconObj>,
    kind_conflicts: Vec<Violation>,
}

impl Reconstruction {
    fn pt_enter(&mut self, aid: ActionId, state: PState) -> PState {
        *self.pt.entry(aid).or_insert(state)
    }

    fn ct_enter(&mut self, aid: ActionId, state: CState) {
        self.ct.entry(aid).or_insert(state);
    }

    fn kind_conflict(&mut self, uid: Uid, have: ObjKind, got: ObjKind) {
        self.kind_conflicts.push(Violation {
            invariant: Invariant::I1WellFormed,
            addr: None,
            detail: format!("{uid} appears both as {have:?} and as {got:?}"),
        });
    }

    fn take_kind_conflicts(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.kind_conflicts)
    }

    /// Mirror of `RecoverCtx::restore_committed`.
    fn restore_committed(
        &mut self,
        uid: Uid,
        kind: ObjKind,
        value: &Value,
        addr: Option<LogAddress>,
    ) {
        match self.objects.get_mut(&uid) {
            Some(obj) => {
                if obj.kind != kind {
                    let have = obj.kind;
                    self.kind_conflict(uid, have, kind);
                    return;
                }
                match kind {
                    ObjKind::Atomic => {
                        if obj.state == ObjState::Prepared {
                            obj.base = Some(value.clone());
                            obj.state = ObjState::Restored;
                        }
                    }
                    ObjKind::Mutex => Self::maybe_replace_mutex(obj, value, addr),
                }
            }
            None => {
                self.objects.insert(
                    uid,
                    ReconObj {
                        kind,
                        state: ObjState::Restored,
                        mutex_addr: if kind == ObjKind::Mutex { addr } else { None },
                        base: Some(value.clone()),
                        current: None,
                        writer: None,
                    },
                );
            }
        }
    }

    /// Mirror of `RecoverCtx::restore_prepared`.
    fn restore_prepared(
        &mut self,
        uid: Uid,
        kind: ObjKind,
        value: &Value,
        aid: ActionId,
        addr: Option<LogAddress>,
    ) {
        match self.objects.get_mut(&uid) {
            Some(obj) => {
                if obj.kind != kind {
                    let have = obj.kind;
                    self.kind_conflict(uid, have, kind);
                    return;
                }
                match kind {
                    ObjKind::Atomic => {
                        if obj.writer.is_none() {
                            obj.current = Some(value.clone());
                            obj.writer = Some(aid);
                        }
                    }
                    ObjKind::Mutex => Self::maybe_replace_mutex(obj, value, addr),
                }
            }
            None => {
                let obj = match kind {
                    ObjKind::Atomic => ReconObj {
                        kind,
                        state: ObjState::Prepared,
                        mutex_addr: None,
                        base: None,
                        current: Some(value.clone()),
                        writer: Some(aid),
                    },
                    ObjKind::Mutex => ReconObj {
                        kind,
                        state: ObjState::Restored,
                        mutex_addr: addr,
                        base: Some(value.clone()),
                        current: None,
                        writer: None,
                    },
                };
                self.objects.insert(uid, obj);
            }
        }
    }

    /// The §4.4 recency rule.
    fn maybe_replace_mutex(obj: &mut ReconObj, value: &Value, addr: Option<LogAddress>) {
        let newer = match (addr, obj.mutex_addr) {
            (Some(new), Some(old)) => new > old,
            _ => false,
        };
        if newer {
            obj.base = Some(value.clone());
            obj.mutex_addr = addr;
        }
    }

    /// Mirror of `RecoverCtx::on_prepared_data`.
    fn on_prepared_data(&mut self, uid: Uid, value: &Value, aid: ActionId) {
        match self.pt.get(&aid).copied() {
            Some(PState::Aborted) => {}
            Some(PState::Committed) => self.restore_committed(uid, ObjKind::Atomic, value, None),
            Some(PState::Prepared) => self.restore_prepared(uid, ObjKind::Atomic, value, aid, None),
            None => {
                self.pt_enter(aid, PState::Prepared);
                self.restore_prepared(uid, ObjKind::Atomic, value, aid, None);
            }
        }
    }
}
