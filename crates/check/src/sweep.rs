//! The exhaustive crash-schedule sweeper.
//!
//! The explorer in [`crate::explore`] enumerates *protocol* interleavings
//! over abstract state machines; this module sweeps *device* schedules over
//! the real storage stack. One un-faulted oracle run of a fixed 3-guardian
//! two-phase-commit workload records how many low-level page writes each
//! guardian performs. Then, for every guardian `v` and every write index
//! `k < W_v`, the workload is re-run from scratch with the fault plan armed
//! to crash `v` at its `k`-th write — tearing the in-flight page exactly as
//! §3.1's crash model allows — after which the node is healed, restarted
//! (recovery runs), in-doubt actions are re-queried to quiescence, and the
//! surviving state is checked two ways:
//!
//! * **structurally**: every guardian's log must pass the invariant
//!   catalogue I1–I10 ([`crate::lint_log`]) and every heap the stale-lock
//!   check I11 ([`crate::lint_heap_quiesced`]);
//! * **semantically**: against the *legal-outcomes oracle*. Each workload
//!   action's fate as observed by the client bounds what recovery may
//!   produce — `Committed` ⇒ its writes are durable at every participant,
//!   `Aborted` ⇒ invisible everywhere, `Pending`/interrupted ⇒ either, but
//!   atomically (all participants agree).
//!
//! With [`SweepConfig::double_crash`], every first-crash point is extended
//! by a second sweep *through recovery itself*: the restart is re-run with
//! a crash armed after `j` further device operations (reads, writes, and
//! forces all count — snapshot recovery and mirror repair write during
//! recovery), the node is healed and restarted once more, and the same
//! checks apply — recovery must be idempotent under its own crashes.
//!
//! On mirrored media ([`MediaKind::Mirrored`]), [`SweepConfig::decay_frontier`]
//! additionally decays one mirror leg of the page that was in flight at the
//! crash (the *crash frontier*) before every restart, composing the
//! Lampson–Sturgis decay model with the crash model.

use crate::obs::SweepObs;
use crate::{lint_heap_quiesced, lint_log, LogImage};
use argus_core::HousekeepingMode;
use argus_guardian::{MediaKind, Outcome, RsKind, World, WorldConfig};
use argus_objects::{GuardianId, Value};
use argus_sim::CostModel;
use argus_slog::ForceConfig;
use argus_stable::CacheConfig;

/// Log-entry threshold that arms automatic housekeeping in swept worlds:
/// low enough that the workload crosses it several times, so crash points
/// land *inside* housekeeping passes as well as the regular protocol.
const HK_THRESHOLD: u64 = 10;

/// One cell of the sweep matrix: a storage configuration to exhaust.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// The recovery organization under test.
    pub kind: RsKind,
    /// Group-commit force batching on (`true`) or immediate forces.
    pub batched: bool,
    /// Page cache + read-ahead on (`true`) or every read from the device.
    pub cached: bool,
    /// Media model under the page stores.
    pub media: MediaKind,
    /// Automatic housekeeping mode armed during the workload, if any.
    pub housekeeping: Option<HousekeepingMode>,
    /// Also sweep a second crash through each recovery.
    pub double_crash: bool,
    /// Stride over second-crash op indices (1 = every device operation).
    pub double_crash_stride: u64,
    /// Decay one mirror leg of the crash-frontier page before restarts
    /// (meaningful only on [`MediaKind::Mirrored`]).
    pub decay_frontier: bool,
    /// Cap on first-crash points per victim (`None` = every write index) —
    /// lets tests run a bounded slice of the same sweep.
    pub max_points_per_victim: Option<u64>,
}

impl SweepConfig {
    /// The default cell for an organization: both optimizations on, memory
    /// media, no housekeeping, single crashes only.
    pub fn new(kind: RsKind) -> Self {
        Self {
            kind,
            batched: true,
            cached: true,
            media: MediaKind::Mem,
            housekeeping: None,
            double_crash: false,
            double_crash_stride: 1,
            decay_frontier: false,
            max_points_per_victim: None,
        }
    }

    /// Enables the crash-during-recovery second sweep with the given
    /// stride over recovery device-op indices.
    pub fn with_double_crash(mut self, stride: u64) -> Self {
        self.double_crash = true;
        self.double_crash_stride = stride.max(1);
        self
    }

    /// Runs on mirrored media and decays the crash-frontier page before
    /// every restart.
    pub fn with_mirror_decay(mut self) -> Self {
        self.media = MediaKind::Mirrored;
        self.decay_frontier = true;
        self
    }

    /// The housekeeping modes an organization supports (the simple log
    /// cannot snapshot — §5.2's snapshot needs the hybrid log's map).
    pub fn supported_housekeeping(kind: RsKind) -> &'static [HousekeepingMode] {
        match kind {
            RsKind::Simple | RsKind::Redo => &[HousekeepingMode::Compaction],
            RsKind::Hybrid | RsKind::Shadow => {
                &[HousekeepingMode::Snapshot, HousekeepingMode::Compaction]
            }
        }
    }

    /// The full sweep matrix from the experiment plan: every organization ×
    /// {no housekeeping, each supported mode} × the group-commit/cache
    /// on-off matrix × {memory media, mirrored media with frontier decay}.
    pub fn matrix(double_crash: bool, stride: u64) -> Vec<Self> {
        let mut cells = Vec::new();
        for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow, RsKind::Redo] {
            let mut modes: Vec<Option<HousekeepingMode>> = vec![None];
            modes.extend(Self::supported_housekeeping(kind).iter().copied().map(Some));
            for hk in modes {
                for (batched, cached) in
                    [(true, true), (true, false), (false, true), (false, false)]
                {
                    for mirrored in [false, true] {
                        let mut cell = Self::new(kind);
                        cell.batched = batched;
                        cell.cached = cached;
                        cell.housekeeping = hk;
                        if mirrored {
                            cell = cell.with_mirror_decay();
                        }
                        if double_crash {
                            cell = cell.with_double_crash(stride);
                        }
                        cells.push(cell);
                    }
                }
            }
        }
        cells
    }

    /// A short human-readable cell label for reports.
    pub fn label(&self) -> String {
        format!(
            "{:?}/{}{}/{}{}{}",
            self.kind,
            if self.batched { "batched" } else { "immediate" },
            if self.cached { "+cache" } else { "" },
            match self.media {
                MediaKind::Mem => "mem",
                MediaKind::Mirrored => "mirrored",
                MediaKind::File { .. } => "file",
            },
            match self.housekeeping {
                Some(HousekeepingMode::Snapshot) => "/snapshot",
                Some(HousekeepingMode::Compaction) => "/compaction",
                None => "",
            },
            if self.double_crash { "/double" } else { "" },
        )
    }

    fn world_config(&self) -> WorldConfig {
        WorldConfig {
            force: if self.batched {
                ForceConfig::default()
            } else {
                ForceConfig::immediate()
            },
            cache: if self.cached {
                CacheConfig::default()
            } else {
                CacheConfig::disabled()
            },
            media: self.media,
            ..WorldConfig::default()
        }
    }
}

/// One failing schedule point: the minimal description that reproduces it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The guardian whose plan was armed.
    pub victim: GuardianId,
    /// Crash at the victim's `first_write`-th page write.
    pub first_write: u64,
    /// Second crash at the `recovery_op`-th device operation of recovery,
    /// if this was a double-crash point.
    pub recovery_op: Option<u64>,
    /// What broke: the lint violation or oracle clause that failed.
    pub problem: String,
    /// Where the flight recorder dumped the failing schedule's full trace
    /// (Chrome trace-event JSON), when the dump succeeded.
    pub trace: Option<String>,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "crash@write[{}] of {:?}", self.first_write, self.victim)?;
        if let Some(j) = self.recovery_op {
            write!(f, " + crash@recovery-op[{j}]")?;
        }
        write!(f, ": {}", self.problem)?;
        if let Some(trace) = &self.trace {
            write!(f, " [trace: {trace}]")?;
        }
        Ok(())
    }
}

/// The result of sweeping one [`SweepConfig`] cell.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The cell swept ([`SweepConfig::label`]).
    pub label: String,
    /// First-crash schedule points explored (one workload re-run each).
    pub first_crash_points: u64,
    /// Second-crash (crash-during-recovery) points explored.
    pub double_crash_points: u64,
    /// Total page writes in the un-faulted oracle run, across guardians.
    pub oracle_writes: u64,
    /// Simulated time spent across every explored world, in microseconds
    /// (each schedule point runs its own world from time zero).
    pub sim_us: u64,
    /// Every schedule whose recovered state failed a check.
    pub counterexamples: Vec<Counterexample>,
}

impl SweepReport {
    /// Whether every explored schedule recovered to a legal, lint-clean
    /// state.
    pub fn is_clean(&self) -> bool {
        self.counterexamples.is_empty()
    }

    /// All schedule points explored, first and second crashes combined.
    pub fn total_points(&self) -> u64 {
        self.first_crash_points + self.double_crash_points
    }

    /// Panics with every counterexample when the sweep is not clean.
    #[track_caller]
    pub fn assert_clean(&self) {
        if !self.is_clean() {
            let mut msg = format!(
                "{}: {} counterexample(s) in {} points:\n",
                self.label,
                self.counterexamples.len(),
                self.total_points()
            );
            for cx in &self.counterexamples {
                msg.push_str(&format!("  {cx}\n"));
            }
            panic!("{msg}");
        }
    }
}

impl std::fmt::Display for SweepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} first-crash + {} double-crash points over {} oracle writes: {}",
            self.label,
            self.first_crash_points,
            self.double_crash_points,
            self.oracle_writes,
            if self.is_clean() {
                "clean".to_owned()
            } else {
                format!("{} COUNTEREXAMPLES", self.counterexamples.len())
            }
        )
    }
}

/// The client-observed fate of one workload action — what the legal-outcomes
/// oracle holds recovery to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    /// `commit` returned `Committed`: the writes are promised durable.
    Committed,
    /// The client aborted (deliberately, or giving up on a crashed node):
    /// the writes must never become visible.
    Aborted,
    /// A crash interrupted two-phase commit: either fate is legal, but it
    /// must be atomic across participants.
    InDoubt,
}

/// One workload action's writes and observed fate.
#[derive(Debug, Clone)]
struct ActionRec {
    writes: Vec<(GuardianId, &'static str, i64)>,
    fate: Fate,
}

/// The fixed deterministic workload: six top-level actions spreading
/// two-phase commits over three guardians with rotating coordinators, one
/// deliberate client abort, and distinct variables per action so visibility
/// is unambiguous. Stops early once `victim` goes down (the client gives up
/// on the in-flight action, aborting it).
fn run_workload(w: &mut World, gids: &[GuardianId], victim: Option<GuardianId>) -> Vec<ActionRec> {
    let (g0, g1, g2) = (gids[0], gids[1], gids[2]);
    #[allow(clippy::type_complexity)]
    let script: Vec<(GuardianId, Vec<(GuardianId, &'static str, i64)>, bool)> = vec![
        (
            g0,
            vec![(g0, "w1", 11), (g1, "w1", 11), (g2, "w1", 11)],
            false,
        ),
        (g1, vec![(g1, "w2", 22), (g2, "w2", 22)], false),
        (g0, vec![(g0, "w3", 33), (g2, "w3", 33)], true), // client abort
        (
            g2,
            vec![(g0, "w4", 44), (g1, "w4", 44), (g2, "w4", 44)],
            false,
        ),
        (g0, vec![(g0, "w5", 55)], false),
        (g1, vec![(g0, "w6", 66), (g1, "w6", 66)], false),
    ];

    let down = |w: &World| victim.is_some_and(|v| !w.is_up(v));
    let mut records = Vec::new();
    for (origin, writes, client_abort) in script {
        if down(w) {
            break;
        }
        let Ok(aid) = w.begin(origin) else { break };
        let mut all_written = true;
        for (g, var, val) in &writes {
            if w.set_stable(*g, aid, var, Value::Int(*val)).is_err() {
                all_written = false;
                break;
            }
        }
        let fate = if client_abort || !all_written || down(w) {
            // A deliberate abort, or the client giving up because a node
            // it needs went down mid-action: abort before two-phase commit.
            w.abort_local(aid);
            Fate::Aborted
        } else {
            match w.commit(aid) {
                Ok(Outcome::Committed) => Fate::Committed,
                Ok(Outcome::Aborted) => Fate::Aborted,
                Ok(Outcome::Pending) | Err(_) => Fate::InDoubt,
            }
        };
        records.push(ActionRec { writes, fate });
        if down(w) {
            break;
        }
    }
    records
}

/// Builds a fresh world for one schedule point.
fn build_world(cfg: &SweepConfig) -> (World, Vec<GuardianId>) {
    let mut w = World::with_config(CostModel::fast(), cfg.world_config());
    let gids: Vec<GuardianId> = (0..3)
        .map(|_| w.add_guardian(cfg.kind).expect("add guardian"))
        .collect();
    if let Some(mode) = cfg.housekeeping {
        for g in &gids {
            w.set_housekeeping_policy(*g, HK_THRESHOLD, mode)
                .expect("set policy");
        }
    }
    (w, gids)
}

/// Checks the recovered, quiesced world structurally (I1–I12) and against
/// the legal-outcomes oracle. Returns every violation found.
fn check_world(w: &mut World, gids: &[GuardianId], records: &[ActionRec]) -> Vec<String> {
    let mut problems = Vec::new();

    // Structural: the recorded trace must be self-consistent (I12) — crash
    // schedules are exactly where dangling spans would slip in.
    for v in crate::lint_trace(w.tracer()) {
        problems.push(format!("trace: {v}"));
    }

    // Structural: I1–I10 per log, I11 per heap.
    let live = w.live_actions();
    for g in gids {
        match w.dump_log(*g) {
            Ok(Some(entries)) => {
                let report = lint_log(&LogImage::from_entries(entries));
                if !report.is_clean() {
                    problems.push(format!("{g:?} log lint: {report}"));
                }
            }
            Ok(None) => {} // shadowing keeps no log
            Err(e) => problems.push(format!("{g:?} log dump failed: {e}")),
        }
        if w.is_up(*g) {
            let heap = &w.guardian(*g).expect("guardian").heap;
            for v in lint_heap_quiesced(heap, &live) {
                problems.push(format!("{g:?} heap: {v}"));
            }
        } else {
            problems.push(format!("{g:?} still down after restart"));
        }
    }

    // Semantic: the legal-outcomes oracle.
    for rec in records {
        let observed: Vec<(GuardianId, &str, Option<Value>)> = rec
            .writes
            .iter()
            .map(|(g, var, _)| {
                let v = w.guardian(*g).expect("guardian").stable_value(var);
                (*g, *var, v)
            })
            .collect();
        match rec.fate {
            Fate::Committed => {
                for ((g, var, got), (_, _, want)) in observed.iter().zip(&rec.writes) {
                    if got.as_ref() != Some(&Value::Int(*want)) {
                        problems.push(format!(
                            "committed write {var}={want} lost at {g:?} (found {got:?})"
                        ));
                    }
                }
            }
            Fate::Aborted => {
                for (g, var, got) in &observed {
                    if got.is_some() {
                        problems.push(format!(
                            "aborted write {var} became visible at {g:?} ({got:?})"
                        ));
                    }
                }
            }
            Fate::InDoubt => {
                let visible = observed.iter().filter(|(_, _, v)| v.is_some()).count();
                if visible != 0 && visible != observed.len() {
                    problems.push(format!(
                        "in-doubt action resolved non-atomically: {observed:?}"
                    ));
                } else if visible == observed.len() {
                    for ((g, var, got), (_, _, want)) in observed.iter().zip(&rec.writes) {
                        if got.as_ref() != Some(&Value::Int(*want)) {
                            problems.push(format!(
                                "in-doubt write {var} committed a wrong value at {g:?}: \
                                 {got:?} != {want}"
                            ));
                        }
                    }
                }
            }
        }
    }
    problems
}

/// Heals the victim, optionally decays the crash-frontier page, restarts,
/// and drives the world to quiescence. When `recovery_crash_op` is set the
/// restart itself is armed to crash after that many device operations; the
/// node is then healed and restarted once more (double-crash idempotence).
/// Returns `Err(problem)` when a restart fails outright.
fn restart_and_quiesce(
    w: &mut World,
    victim: GuardianId,
    cfg: &SweepConfig,
    recovery_crash_op: Option<u64>,
) -> Result<(), String> {
    let decay = |w: &mut World| {
        if cfg.decay_frontier {
            if let Some(pno) = w.fault_plan(victim).ok().and_then(|p| p.frontier_page()) {
                let _ = w.decay_page(victim, pno);
            }
        }
    };
    decay(w);
    match recovery_crash_op {
        None => {
            w.restart(victim)
                .map_err(|e| format!("restart failed: {e}"))?;
        }
        Some(j) => {
            match w
                .restart_with_crash_after_ops(victim, j)
                .map_err(|e| format!("armed restart failed: {e}"))?
            {
                Some(_) => {}
                None => {
                    // Recovery itself crashed at op j; the frontier may
                    // have torn again — decay composes here too.
                    decay(w);
                    w.restart(victim)
                        .map_err(|e| format!("restart after recovery crash failed: {e}"))?;
                }
            }
        }
    }
    w.requery_in_doubt()
        .map_err(|e| format!("requery failed: {e}"))?;
    // The second crash's countdown can outlive recovery proper and fire in
    // the resumption or re-query traffic instead: bring the node back once
    // more. A countdown that never expired at all is cancelled so it cannot
    // fire inside the checks below.
    if !w.is_up(victim) {
        decay(w);
        w.restart(victim)
            .map_err(|e| format!("re-restart failed: {e}"))?;
        w.requery_in_doubt()
            .map_err(|e| format!("requery failed: {e}"))?;
    }
    w.fault_plan(victim)
        .map_err(|e| format!("no fault plan: {e}"))?
        .disarm();
    Ok(())
}

/// The flight recorder: dumps the failing schedule's full trace next to the
/// point's repro coordinates. Returns the dump path, or `None` when the
/// dump itself failed (the counterexample still stands on its own).
fn dump_flight(
    cfg: &SweepConfig,
    w: &World,
    victim_idx: usize,
    k: u64,
    recovery_crash_op: Option<u64>,
) -> Option<String> {
    let label = match recovery_crash_op {
        Some(j) => format!("sweep-{}-v{victim_idx}-w{k}-r{j}", cfg.label()),
        None => format!("sweep-{}-v{victim_idx}-w{k}", cfg.label()),
    };
    argus_trace::flight::dump(&label, &w.tracer().events())
        .ok()
        .map(|p| p.display().to_string())
}

/// Runs one schedule point end to end: workload with a crash armed at the
/// victim's `k`-th write (and optionally a second crash at recovery op `j`),
/// restart, quiesce, check. Returns the violations (with the flight-recorder
/// dump path when there were any) and the number of device operations the
/// victim's recovery performed (for the second sweep).
fn run_point(
    cfg: &SweepConfig,
    victim_idx: usize,
    k: u64,
    recovery_crash_op: Option<u64>,
) -> (Vec<String>, Option<String>, u64, u64) {
    let (mut w, gids) = build_world(cfg);
    let victim = gids[victim_idx];
    w.arm_crash_after_writes(victim, k).expect("arm");
    let records = run_workload(&mut w, &gids, Some(victim));

    if w.is_up(victim) {
        // The armed write never happened on this schedule (the workload
        // ended first); the state is the oracle state. Disarm and verify
        // anyway — it is a free consistency check.
        w.fault_plan(victim).expect("plan").heal();
        let problems = check_world(&mut w, &gids, &records);
        let trace = (!problems.is_empty())
            .then(|| dump_flight(cfg, &w, victim_idx, k, recovery_crash_op))
            .flatten();
        let sim_us = w.clock.now();
        return (problems, trace, 0, sim_us);
    }

    w.crash(victim);
    let before = w.fault_plan(victim).expect("plan").op_counts();
    let mut problems = match restart_and_quiesce(&mut w, victim, cfg, recovery_crash_op) {
        Ok(()) => check_world(&mut w, &gids, &records),
        Err(problem) => vec![problem],
    };
    let recovery_ops = w
        .fault_plan(victim)
        .expect("plan")
        .op_counts()
        .since(&before)
        .total();
    problems.retain(|p| !p.is_empty());
    let trace = (!problems.is_empty())
        .then(|| dump_flight(cfg, &w, victim_idx, k, recovery_crash_op))
        .flatten();
    let sim_us = w.clock.now();
    (problems, trace, recovery_ops, sim_us)
}

/// Sweeps one configuration cell exhaustively. See the module docs for the
/// exploration structure.
pub fn sweep(cfg: &SweepConfig) -> SweepReport {
    let obs = SweepObs::resolve();
    let mut report = SweepReport {
        label: cfg.label(),
        first_crash_points: 0,
        double_crash_points: 0,
        oracle_writes: 0,
        sim_us: 0,
        counterexamples: Vec::new(),
    };

    // Oracle run: no faults; records the per-guardian write budgets.
    let (mut w, gids) = build_world(cfg);
    let records = run_workload(&mut w, &gids, None);
    let budgets: Vec<u64> = gids
        .iter()
        .map(|g| w.fault_plan(*g).expect("plan").op_counts().writes)
        .collect();
    report.oracle_writes = budgets.iter().sum();
    let oracle_problems = check_world(&mut w, &gids, &records);
    report.sim_us += w.clock.now();
    for problem in oracle_problems {
        report.counterexamples.push(Counterexample {
            victim: GuardianId(u32::MAX),
            first_write: 0,
            recovery_op: None,
            problem: format!("un-faulted oracle run: {problem}"),
            trace: None,
        });
    }

    for (vi, budget) in budgets.iter().enumerate() {
        let limit = cfg
            .max_points_per_victim
            .map_or(*budget, |m| m.min(*budget));
        for k in 0..limit {
            report.first_crash_points += 1;
            obs.points.inc();
            let (problems, trace, recovery_ops, sim_us) = run_point(cfg, vi, k, None);
            report.sim_us += sim_us;
            for problem in problems {
                obs.counterexamples.inc();
                report.counterexamples.push(Counterexample {
                    victim: gids[vi],
                    first_write: k,
                    recovery_op: None,
                    problem,
                    trace: trace.clone(),
                });
            }
            if cfg.double_crash && recovery_ops > 0 {
                let mut j = 0;
                while j < recovery_ops {
                    report.double_crash_points += 1;
                    obs.double_crashes.inc();
                    let (problems, trace, _, sim_us) = run_point(cfg, vi, k, Some(j));
                    report.sim_us += sim_us;
                    for problem in problems {
                        obs.counterexamples.inc();
                        report.counterexamples.push(Counterexample {
                            victim: gids[vi],
                            first_write: k,
                            recovery_op: Some(j),
                            problem,
                            trace: trace.clone(),
                        });
                    }
                    j += cfg.double_crash_stride;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_run_is_clean_and_counts_writes() {
        let cfg = SweepConfig::new(RsKind::Hybrid);
        let (mut w, gids) = build_world(&cfg);
        let records = run_workload(&mut w, &gids, None);
        assert_eq!(records.len(), 6);
        assert!(records.iter().enumerate().all(|(i, r)| if i == 2 {
            r.fate == Fate::Aborted
        } else {
            r.fate == Fate::Committed
        }));
        assert!(check_world(&mut w, &gids, &records).is_empty());
        let writes: u64 = gids
            .iter()
            .map(|g| w.fault_plan(*g).unwrap().op_counts().writes)
            .sum();
        assert!(writes > 0, "the workload must hit the device");
    }

    #[test]
    fn bounded_sweep_of_each_organization_is_clean() {
        for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow, RsKind::Redo] {
            let mut cfg = SweepConfig::new(kind);
            cfg.max_points_per_victim = Some(4);
            sweep(&cfg).assert_clean();
        }
    }

    #[test]
    fn double_crash_points_are_explored() {
        let mut cfg = SweepConfig::new(RsKind::Hybrid).with_double_crash(5);
        cfg.max_points_per_victim = Some(2);
        let report = sweep(&cfg);
        assert!(report.double_crash_points > 0, "{report}");
        report.assert_clean();
    }
}
