//! argus-check: correctness tooling for the recovery system.
//!
//! Three engines, per "Guaranteeing Recoverability via Partially Constrained
//! Transaction Logs" (PAPERS.md) applied to the Oki thesis's hybrid log:
//!
//! * **The static log linter** ([`lint_log`] / [`lint_log_against`]): a pure
//!   function over a decoded [`LogImage`] that verifies the invariant
//!   catalogue I1–I10 — chain termination and completeness, outcome
//!   matching, shadow-map resolution, uid uniqueness, accessibility-set
//!   closure, and agreement between independently reconstructed PT/CT/OT
//!   tables and `core`'s own recovery. Also exposed as the `argus-lint` CLI.
//!   The catalogue's one heap-level entry, I11 (no stale locks in a
//!   quiesced world), is checked by [`lint_heap_quiesced`] over a volatile
//!   heap instead of a log image.
//! * **The bounded 2PC interleaving explorer** ([`explore::Explorer`]): a
//!   deterministic DFS over the real `twopc` coordinator/participant state
//!   machines that enumerates message reorderings, drops, and crash points
//!   up to a configurable budget, asserting atomicity at every reachable
//!   state and linting every node's log along the way.
//! * **The VOPR** ([`vopr`]): a seeded randomized fault-composition
//!   explorer — one u64 seed deterministically composes message
//!   drop/duplication/reordering, partitions with scheduled heals, guardian
//!   pauses with clock skew, media decay, and crashes with recovery against
//!   a rolling multi-guardian 2PC workload, running the lint, the
//!   legal-outcomes oracle, heap quiescence, and trace consistency at every
//!   quiesce point. Violations replay byte-for-byte from the seed
//!   (`argus-lint vopr --seed N --iterations M`) and dump their schedule
//!   through the flight recorder.
//!
//! # Examples
//!
//! ```
//! use argus_check::{lint_log, LogImage};
//! use argus_core::LogEntry;
//! use argus_objects::{ActionId, GuardianId};
//! use argus_slog::LogAddress;
//!
//! let aid = ActionId::new(GuardianId(0), 1);
//! let image = LogImage::from_entries(vec![
//!     (
//!         LogAddress(512),
//!         LogEntry::Prepared { aid, pairs: vec![], prev: None },
//!     ),
//!     (
//!         LogAddress(600),
//!         LogEntry::Committed { aid, prev: Some(LogAddress(512)) },
//!     ),
//! ]);
//! let report = lint_log(&image);
//! report.assert_clean();
//! ```

#![warn(missing_docs)]

pub mod explore;
mod image;
mod lint;
mod obs;
pub mod sweep;
pub mod vopr;

pub use explore::{ExploreConfig, ExploreReport, ExploreStats, Explorer};
pub use image::{BadRecord, LogImage};
pub use lint::{
    assert_heap_quiesced, assert_trace_consistent, detect_flavor, lint_heap_quiesced, lint_log,
    lint_log_against, lint_trace, Flavor, Invariant, LintReport, ReconObj, Reconstruction,
    Violation,
};
pub use sweep::{sweep, Counterexample, SweepConfig, SweepReport};
pub use vopr::{vopr, FaultTally, VoprConfig, VoprSummary};
