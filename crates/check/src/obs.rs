//! Cached metric handles for the checker, resolved against the ambient
//! [`argus_obs`] registry — the explorer coverage counters feed experiment
//! E11 in `bin/experiments`.

use argus_obs::Counter;

/// Linter counters.
#[derive(Debug, Clone)]
pub(crate) struct LintObs {
    /// Lint passes run.
    pub runs: Counter,
    /// Violations reported across all passes.
    pub violations: Counter,
}

impl LintObs {
    pub fn resolve() -> Self {
        let reg = argus_obs::current();
        Self {
            runs: reg.counter("check.lint.runs"),
            violations: reg.counter("check.lint.violations"),
        }
    }
}

/// Explorer coverage counters.
#[derive(Debug, Clone)]
pub(crate) struct ExploreObs {
    /// Distinct states visited.
    pub states_visited: Counter,
    /// Interleavings pruned because the successor state was already seen.
    pub dedup_pruned: Counter,
    /// Crash points injected.
    pub crash_points: Counter,
    /// Messages delivered.
    pub deliveries: Counter,
    /// Messages dropped.
    pub drops: Counter,
    /// Terminal (quiescent, fully-recovered) states reached.
    pub terminal_states: Counter,
    /// Per-node log lints run on visited states.
    pub lint_runs: Counter,
    /// Branches cut by the step budget.
    pub depth_limited: Counter,
}

impl ExploreObs {
    pub fn resolve() -> Self {
        let reg = argus_obs::current();
        Self {
            states_visited: reg.counter("check.explore.states_visited"),
            dedup_pruned: reg.counter("check.explore.dedup_pruned"),
            crash_points: reg.counter("check.explore.crash_points"),
            deliveries: reg.counter("check.explore.deliveries"),
            drops: reg.counter("check.explore.drops"),
            terminal_states: reg.counter("check.explore.terminal_states"),
            lint_runs: reg.counter("check.explore.lint_runs"),
            depth_limited: reg.counter("check.explore.depth_limited"),
        }
    }
}

/// Crash-schedule sweeper coverage counters — feed experiment E15.
#[derive(Debug, Clone)]
pub(crate) struct SweepObs {
    /// First-crash schedule points explored (one full workload run each).
    pub points: Counter,
    /// Legality or lint failures found across all points.
    pub counterexamples: Counter,
    /// Second-crash (crash-during-recovery) schedule points explored.
    pub double_crashes: Counter,
}

impl SweepObs {
    pub fn resolve() -> Self {
        let reg = argus_obs::current();
        Self {
            points: reg.counter("check.sweep.points"),
            counterexamples: reg.counter("check.sweep.counterexamples"),
            double_crashes: reg.counter("check.sweep.double_crashes"),
        }
    }
}
