//! Cached metric handles for the checker, resolved against the ambient
//! [`argus_obs`] registry — the explorer coverage counters feed experiment
//! E11 in `bin/experiments`.

use argus_obs::Counter;

/// Linter counters.
#[derive(Debug, Clone)]
pub(crate) struct LintObs {
    /// Lint passes run.
    pub runs: Counter,
    /// Violations reported across all passes.
    pub violations: Counter,
}

impl LintObs {
    pub fn resolve() -> Self {
        let reg = argus_obs::current();
        Self {
            runs: reg.counter("check.lint.runs"),
            violations: reg.counter("check.lint.violations"),
        }
    }
}

/// Explorer coverage counters.
#[derive(Debug, Clone)]
pub(crate) struct ExploreObs {
    /// Distinct states visited.
    pub states_visited: Counter,
    /// Interleavings pruned because the successor state was already seen.
    pub dedup_pruned: Counter,
    /// Crash points injected.
    pub crash_points: Counter,
    /// Messages delivered.
    pub deliveries: Counter,
    /// Messages dropped.
    pub drops: Counter,
    /// Terminal (quiescent, fully-recovered) states reached.
    pub terminal_states: Counter,
    /// Per-node log lints run on visited states.
    pub lint_runs: Counter,
    /// Branches cut by the step budget.
    pub depth_limited: Counter,
}

impl ExploreObs {
    pub fn resolve() -> Self {
        let reg = argus_obs::current();
        Self {
            states_visited: reg.counter("check.explore.states_visited"),
            dedup_pruned: reg.counter("check.explore.dedup_pruned"),
            crash_points: reg.counter("check.explore.crash_points"),
            deliveries: reg.counter("check.explore.deliveries"),
            drops: reg.counter("check.explore.drops"),
            terminal_states: reg.counter("check.explore.terminal_states"),
            lint_runs: reg.counter("check.explore.lint_runs"),
            depth_limited: reg.counter("check.explore.depth_limited"),
        }
    }
}

/// Randomized fault-composition explorer counters — feed experiment E17.
/// The per-kind fault counters are the proof that a smoke batch actually
/// composed every fault shape, not just the cheap ones.
#[derive(Debug, Clone)]
pub(crate) struct VoprObs {
    /// Explorer steps executed.
    pub steps: Counter,
    /// Workload actions driven.
    pub actions: Counter,
    /// Quiesce-point invariant checks run.
    pub checks: Counter,
    /// Invariant or oracle violations found.
    pub violations: Counter,
    /// Messages lost by the injector (`drop_prob`).
    pub drops: Counter,
    /// Duplicate deliveries injected.
    pub duplicates: Counter,
    /// Deferrals (reorderings) injected.
    pub defers: Counter,
    /// Partitions opened.
    pub partitions: Counter,
    /// Partitions healed.
    pub heals: Counter,
    /// Guardian pauses begun.
    pub pauses: Counter,
    /// Clock-skew advances applied.
    pub skews: Counter,
    /// Media pages decayed.
    pub decays: Counter,
    /// Crashes injected (explicit and armed).
    pub crashes: Counter,
    /// Restarts (recoveries) driven.
    pub restarts: Counter,
}

impl VoprObs {
    pub fn resolve() -> Self {
        let reg = argus_obs::current();
        Self {
            steps: reg.counter("vopr.steps"),
            actions: reg.counter("vopr.actions"),
            checks: reg.counter("vopr.checks"),
            violations: reg.counter("vopr.violations"),
            drops: reg.counter("vopr.fault.drop"),
            duplicates: reg.counter("vopr.fault.duplicate"),
            defers: reg.counter("vopr.fault.defer"),
            partitions: reg.counter("vopr.fault.partition"),
            heals: reg.counter("vopr.fault.heal"),
            pauses: reg.counter("vopr.fault.pause"),
            skews: reg.counter("vopr.fault.skew"),
            decays: reg.counter("vopr.fault.decay"),
            crashes: reg.counter("vopr.fault.crash"),
            restarts: reg.counter("vopr.fault.restart"),
        }
    }
}

/// Crash-schedule sweeper coverage counters — feed experiment E15.
#[derive(Debug, Clone)]
pub(crate) struct SweepObs {
    /// First-crash schedule points explored (one full workload run each).
    pub points: Counter,
    /// Legality or lint failures found across all points.
    pub counterexamples: Counter,
    /// Second-crash (crash-during-recovery) schedule points explored.
    pub double_crashes: Counter,
}

impl SweepObs {
    pub fn resolve() -> Self {
        let reg = argus_obs::current();
        Self {
            points: reg.counter("check.sweep.points"),
            counterexamples: reg.counter("check.sweep.counterexamples"),
            double_crashes: reg.counter("check.sweep.double_crashes"),
        }
    }
}
