//! The airline-reservation workload: seat maps plus a mutex audit trail.

use argus_guardian::{Outcome, RsKind, World, WorldResult};
use argus_objects::{GuardianId, HeapId, ObjRef, Value};
use argus_sim::DetRng;

/// Parameters for the reservations workload.
#[derive(Debug, Clone)]
pub struct ReservationsConfig {
    /// Number of flights.
    pub flights: usize,
    /// Seats per flight.
    pub seats: usize,
}

impl Default for ReservationsConfig {
    fn default() -> Self {
        Self {
            flights: 4,
            seats: 20,
        }
    }
}

/// Counters reported by a run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReservationsStats {
    /// Bookings that committed.
    pub booked: u64,
    /// Bookings refused because the seat was taken.
    pub refused: u64,
}

/// A deployed reservations workload on one guardian.
///
/// Each flight is an atomic object holding a `Seq` of seat booleans; the
/// audit trail is a *mutex* object holding a growing `Seq` of booking
/// records — mutating it under `seize` exercises the mutex write and
/// recovery paths (§2.4.2).
#[derive(Debug)]
pub struct Reservations {
    cfg: ReservationsConfig,
    gid: GuardianId,
}

impl Reservations {
    /// Creates the guardian, flights, and audit trail.
    pub fn setup(
        world: &mut World,
        kind: RsKind,
        cfg: ReservationsConfig,
    ) -> WorldResult<Reservations> {
        let gid = world.add_guardian(kind)?;
        let aid = world.begin(gid)?;
        for f in 0..cfg.flights {
            let seats = Value::Seq(vec![Value::Bool(false); cfg.seats]);
            let flight = world.create_atomic(gid, aid, seats)?;
            world.set_stable(gid, aid, &flight_name(f), Value::heap_ref(flight))?;
        }
        let audit = world.create_mutex(gid, Value::Seq(Vec::new()))?;
        world.set_stable(gid, aid, "audit", Value::heap_ref(audit))?;
        let outcome = world.commit(aid)?;
        debug_assert_eq!(outcome, Outcome::Committed);
        Ok(Reservations { cfg, gid })
    }

    /// The guardian hosting the flights.
    pub fn guardian(&self) -> GuardianId {
        self.gid
    }

    fn handle(&self, world: &mut World, name: &str) -> WorldResult<HeapId> {
        match world.guardian(self.gid)?.stable_value(name) {
            Some(Value::Ref(ObjRef::Heap(h))) => Ok(h),
            // A uid reference after an on-demand recovery: the object is
            // still on the log; the heap-miss path materializes it.
            Some(Value::Ref(ObjRef::Uid(u))) => match world.demand(self.gid, u)? {
                Some(h) => Ok(h),
                None => Err(argus_guardian::WorldError::Rs(
                    argus_core::RsError::BadState(format!("{name} dangling: uid {u}")),
                )),
            },
            other => Err(argus_guardian::WorldError::Rs(
                argus_core::RsError::BadState(format!("{name} unresolved: {other:?}")),
            )),
        }
    }

    /// Attempts to book `seat` on `flight`; commits iff the seat was free.
    pub fn book(&self, world: &mut World, flight: usize, seat: usize) -> WorldResult<Outcome> {
        let aid = world.begin(self.gid)?;
        let flight_h = self.handle(world, &flight_name(flight))?;
        let taken = match world.read(self.gid, aid, flight_h)? {
            Value::Seq(seats) => matches!(seats.get(seat), Some(Value::Bool(true))),
            _ => true,
        };
        if taken {
            world.abort_local(aid);
            return Ok(Outcome::Aborted);
        }
        world.write_atomic(self.gid, aid, flight_h, |v| {
            if let Value::Seq(seats) = v {
                if let Some(slot) = seats.get_mut(seat) {
                    *slot = Value::Bool(true);
                }
            }
        })?;
        let audit_h = self.handle(world, "audit")?;
        world.mutate_mutex(self.gid, aid, audit_h, |v| {
            if let Value::Seq(entries) = v {
                entries.push(Value::Seq(vec![
                    Value::Int(flight as i64),
                    Value::Int(seat as i64),
                ]));
            }
        })?;
        world.commit(aid)
    }

    /// Books random seats.
    pub fn run(
        &self,
        world: &mut World,
        rng: &mut DetRng,
        n: u64,
    ) -> WorldResult<ReservationsStats> {
        let mut stats = ReservationsStats::default();
        for _ in 0..n {
            let flight = rng.gen_range(self.cfg.flights as u64) as usize;
            let seat = rng.gen_range(self.cfg.seats as u64) as usize;
            match self.book(world, flight, seat)? {
                Outcome::Committed => stats.booked += 1,
                Outcome::Aborted => stats.refused += 1,
                Outcome::Pending => {}
            }
        }
        Ok(stats)
    }

    /// Counts booked seats across flights (committed view).
    pub fn booked_seats(&self, world: &World) -> WorldResult<u64> {
        let guardian = world.guardian(self.gid)?;
        let mut booked = 0;
        for f in 0..self.cfg.flights {
            if let Some(Value::Ref(ObjRef::Heap(h))) = guardian.stable_value(&flight_name(f)) {
                if let Ok(Value::Seq(seats)) = guardian.heap.read_value(h, None) {
                    booked += seats
                        .iter()
                        .filter(|s| matches!(s, Value::Bool(true)))
                        .count() as u64;
                }
            }
        }
        Ok(booked)
    }

    /// Length of the audit trail (committed view).
    pub fn audit_len(&self, world: &World) -> WorldResult<u64> {
        let guardian = world.guardian(self.gid)?;
        if let Some(Value::Ref(ObjRef::Heap(h))) = guardian.stable_value("audit") {
            if let Ok(Value::Seq(entries)) = guardian.heap.read_value(h, None) {
                return Ok(entries.len() as u64);
            }
        }
        Ok(0)
    }
}

fn flight_name(f: usize) -> String {
    format!("flight{f}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seats_and_audit_agree_after_crash() {
        for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow] {
            let mut world = World::fast();
            let resv =
                Reservations::setup(&mut world, kind, ReservationsConfig::default()).unwrap();
            let mut rng = DetRng::new(3);
            let stats = resv.run(&mut world, &mut rng, 40).unwrap();
            assert!(stats.booked > 0);

            world.crash(resv.guardian());
            world.restart(resv.guardian()).unwrap();
            assert_eq!(resv.booked_seats(&world).unwrap(), stats.booked, "{kind:?}");
            assert_eq!(resv.audit_len(&world).unwrap(), stats.booked, "{kind:?}");
        }
    }

    #[test]
    fn double_booking_is_refused() {
        let mut world = World::fast();
        let resv =
            Reservations::setup(&mut world, RsKind::Hybrid, ReservationsConfig::default()).unwrap();
        assert_eq!(resv.book(&mut world, 0, 0).unwrap(), Outcome::Committed);
        assert_eq!(resv.book(&mut world, 0, 0).unwrap(), Outcome::Aborted);
        assert_eq!(resv.booked_seats(&world).unwrap(), 1);
    }
}
