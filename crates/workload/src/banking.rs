//! The banking workload: transfers between accounts.

use argus_guardian::{Outcome, RsKind, World, WorldError, WorldResult};
use argus_objects::HeapError;
use argus_objects::{ActionId, GuardianId, HeapId, ObjRef, Value};
use argus_sim::{DetRng, Zipf};

/// Parameters for the banking workload.
#[derive(Debug, Clone)]
pub struct BankingConfig {
    /// Number of guardians (bank branches).
    pub guardians: usize,
    /// Accounts per guardian.
    pub accounts_per_guardian: usize,
    /// Initial balance per account.
    pub initial: i64,
    /// Zipf skew over accounts (0 = uniform).
    pub zipf_theta: f64,
    /// Probability a transfer crosses guardians (drives two-phase commit).
    pub cross_prob: f64,
    /// Probability the client aborts the transfer before committing.
    pub abort_prob: f64,
}

impl Default for BankingConfig {
    fn default() -> Self {
        Self {
            guardians: 2,
            accounts_per_guardian: 16,
            initial: 1_000,
            zipf_theta: 0.6,
            cross_prob: 0.3,
            abort_prob: 0.05,
        }
    }
}

/// Counters reported by a run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BankingStats {
    /// Transfers committed.
    pub committed: u64,
    /// Transfers aborted by the client, including lock-conflict give-ups:
    /// under a faulty network an in-doubt transfer holds its locks until
    /// the verdict arrives, and a colliding client gives up rather than
    /// wait.
    pub aborted: u64,
    /// Transfers left in doubt (commit driven to no verdict yet).
    pub in_doubt: u64,
}

/// A deployed banking workload.
#[derive(Debug)]
pub struct Banking {
    cfg: BankingConfig,
    gids: Vec<GuardianId>,
    zipf: Zipf,
}

impl Banking {
    /// Creates the guardians and their accounts (one committed setup action
    /// per guardian), returning the deployed workload.
    pub fn setup(world: &mut World, kind: RsKind, cfg: BankingConfig) -> WorldResult<Banking> {
        let mut gids = Vec::with_capacity(cfg.guardians);
        for _ in 0..cfg.guardians {
            gids.push(world.add_guardian(kind)?);
        }
        for &g in &gids {
            let aid = world.begin(g)?;
            for i in 0..cfg.accounts_per_guardian {
                let account = world.create_atomic(g, aid, Value::Int(cfg.initial))?;
                world.set_stable(g, aid, &account_name(i), Value::heap_ref(account))?;
            }
            let outcome = world.commit(aid)?;
            debug_assert_eq!(outcome, Outcome::Committed);
        }
        let zipf = Zipf::new(cfg.accounts_per_guardian.max(1), cfg.zipf_theta);
        Ok(Banking { cfg, gids, zipf })
    }

    /// The guardians hosting accounts.
    pub fn guardians(&self) -> &[GuardianId] {
        &self.gids
    }

    /// Resolves the heap handle of account `i` at guardian `g` (handles are
    /// volatile; the durable name is the stable variable).
    pub fn account(&self, world: &mut World, g: GuardianId, i: usize) -> WorldResult<HeapId> {
        match world.guardian(g)?.stable_value(&account_name(i)) {
            Some(Value::Ref(ObjRef::Heap(h))) => Ok(h),
            // A uid reference after an on-demand recovery: the account is
            // still on the log; the heap-miss path materializes it.
            Some(Value::Ref(ObjRef::Uid(u))) => match world.demand(g, u)? {
                Some(h) => Ok(h),
                None => Err(argus_guardian::WorldError::Rs(
                    argus_core::RsError::BadState(format!("account {i} at {g} dangling: uid {u}")),
                )),
            },
            other => Err(argus_guardian::WorldError::Rs(
                argus_core::RsError::BadState(format!("account {i} at {g} unresolved: {other:?}")),
            )),
        }
    }

    /// Runs one transfer; returns the outcome.
    pub fn transfer(
        &self,
        world: &mut World,
        rng: &mut DetRng,
        amount: i64,
    ) -> WorldResult<Outcome> {
        let from_g = self.gids[rng.gen_range(self.gids.len() as u64) as usize];
        let to_g = if rng.gen_bool(self.cfg.cross_prob) && self.gids.len() > 1 {
            loop {
                let g = self.gids[rng.gen_range(self.gids.len() as u64) as usize];
                if g != from_g {
                    break g;
                }
            }
        } else {
            from_g
        };
        let from_i = self.zipf.sample(rng);
        let mut to_i = self.zipf.sample(rng);
        if from_g == to_g && to_i == from_i {
            to_i = (to_i + 1) % self.cfg.accounts_per_guardian;
        }

        let aid = world.begin(from_g)?;
        let from_h = self.account(world, from_g, from_i)?;
        let to_h = self.account(world, to_g, to_i)?;
        let written = world
            .write_atomic(from_g, aid, from_h, |v| {
                if let Value::Int(balance) = v {
                    *balance -= amount;
                }
            })
            .and_then(|()| {
                world.write_atomic(to_g, aid, to_h, |v| {
                    if let Value::Int(balance) = v {
                        *balance += amount;
                    }
                })
            });
        if let Err(e) = written {
            // The action must not dangle holding half its locks.
            world.abort_local(aid);
            return match e {
                // Under a faulty network the lock holder may be in doubt
                // for a while; a real client gives up and aborts rather
                // than error out.
                WorldError::Heap(HeapError::LockConflict { .. }) => Ok(Outcome::Aborted),
                other => Err(other),
            };
        }
        if rng.gen_bool(self.cfg.abort_prob) {
            world.abort_local(aid);
            return Ok(Outcome::Aborted);
        }
        world.commit(aid)
    }

    /// Runs `n` transfers and reports counters.
    pub fn run(&self, world: &mut World, rng: &mut DetRng, n: u64) -> WorldResult<BankingStats> {
        let mut stats = BankingStats::default();
        for _ in 0..n {
            let amount = 1 + rng.gen_range(100) as i64;
            match self.transfer(world, rng, amount)? {
                Outcome::Committed => stats.committed += 1,
                Outcome::Aborted => stats.aborted += 1,
                Outcome::Pending => stats.in_doubt += 1,
            }
        }
        Ok(stats)
    }

    /// Sums every account's committed balance — must equal
    /// `guardians × accounts × initial` at all times (the consistency
    /// invariant transfers preserve).
    pub fn total_balance(&self, world: &World) -> WorldResult<i64> {
        let mut total = 0;
        for &g in &self.gids {
            let guardian = world.guardian(g)?;
            for i in 0..self.cfg.accounts_per_guardian {
                if let Some(Value::Ref(ObjRef::Heap(h))) = guardian.stable_value(&account_name(i)) {
                    if let Ok(Value::Int(balance)) = guardian.heap.read_value(h, None) {
                        total += balance;
                    }
                }
            }
        }
        Ok(total)
    }

    /// The invariant value [`Banking::total_balance`] must match.
    pub fn expected_total(&self) -> i64 {
        self.cfg.guardians as i64 * self.cfg.accounts_per_guardian as i64 * self.cfg.initial
    }
}

fn account_name(i: usize) -> String {
    format!("acct{i}")
}

/// Suppress the unused warning for ActionId re-export coherence.
#[allow(unused)]
fn _types(_a: ActionId) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_conserve_total_balance() {
        for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow] {
            let mut world = World::fast();
            let bank = Banking::setup(&mut world, kind, BankingConfig::default()).unwrap();
            let mut rng = DetRng::new(7);
            let stats = bank.run(&mut world, &mut rng, 50).unwrap();
            assert!(stats.committed > 0);
            assert_eq!(
                bank.total_balance(&world).unwrap(),
                bank.expected_total(),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn balance_survives_crashes_of_every_branch() {
        let mut world = World::fast();
        let bank = Banking::setup(&mut world, RsKind::Hybrid, BankingConfig::default()).unwrap();
        let mut rng = DetRng::new(11);
        bank.run(&mut world, &mut rng, 30).unwrap();
        for &g in bank.guardians().to_vec().iter() {
            world.crash(g);
            world.restart(g).unwrap();
        }
        assert_eq!(bank.total_balance(&world).unwrap(), bank.expected_total());
    }
}
