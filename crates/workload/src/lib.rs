//! Workload generators for the experiments and examples.
//!
//! Three workloads, matching the application domains the thesis's
//! introduction motivates ("banking systems, airline reservation systems,
//! office automation systems, and database systems"):
//!
//! * [`Banking`] — accounts as atomic objects, transfer actions, optional
//!   cross-guardian transfers driving two-phase commit, with a conserved
//!   total balance as the global consistency invariant.
//! * [`Reservations`] — flights with seat vectors plus a mutex audit trail,
//!   exercising the mutex write/recovery path.
//! * [`Synth`] — a parameterized synthetic object store: zipf-selected
//!   updates, adjustable value sizes, and a probability of creating and
//!   linking new objects (the newly-accessible-object machinery of
//!   §3.3.3.2).
//!
//! Plus one adversarial mix for the concurrency-control subsystem:
//!
//! * [`Contended`] — a high-contention zipfian transfer mix over a small
//!   hot account set that deadlocks by construction (no global lock
//!   ordering), driven by a deterministic slot scheduler with seeded
//!   backoff retry — the workload behind experiment E14.
//!
//! And one scale mix for many-guardian worlds:
//!
//! * [`Sharded`] — [`Contended`] generalized to a partitioned object space
//!   across 64–1024 shard guardians: a zipfian population of simulated
//!   users with O(1) home-shard routing issues cross-shard transfer /
//!   airline-reservation actions, spreading two-phase-commit coordination
//!   across every shard — the workload behind experiment E21.
//!
//! All generators draw exclusively from [`argus_sim::DetRng`], so a seed
//! pins down a run exactly.

mod banking;
mod contended;
mod reservations;
mod sharded;
mod synth;

pub use banking::{Banking, BankingConfig, BankingStats};
pub use contended::{Contended, ContendedConfig, ContendedStats};
pub use reservations::{Reservations, ReservationsConfig, ReservationsStats};
pub use sharded::{Sharded, ShardedConfig, ShardedStats};
pub use synth::{Synth, SynthConfig};
