//! The synthetic object-store workload: the parameter knobs the experiments
//! sweep.

use argus_guardian::{Outcome, RsKind, World, WorldResult};
use argus_objects::{GuardianId, HeapId, ObjRef, Value};
use argus_sim::{DetRng, Zipf};

/// Parameters for the synthetic workload.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of long-lived objects (the live set).
    pub objects: usize,
    /// Objects modified per action.
    pub writes_per_action: usize,
    /// Payload bytes per object version.
    pub value_size: usize,
    /// Probability an action also creates and links a brand-new object
    /// (exercising the newly-accessible-object path, §3.3.3.2).
    pub new_object_prob: f64,
    /// Zipf skew of object selection (0 = uniform).
    pub zipf_theta: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            objects: 64,
            writes_per_action: 4,
            value_size: 64,
            new_object_prob: 0.0,
            zipf_theta: 0.0,
        }
    }
}

/// A deployed synthetic store on one guardian.
#[derive(Debug)]
pub struct Synth {
    cfg: SynthConfig,
    gid: GuardianId,
    zipf: Zipf,
    /// Committed actions so far (for diagnostics).
    pub committed: u64,
}

impl Synth {
    /// Creates the guardian and the initial live set in batches, committing
    /// as it goes.
    pub fn setup(world: &mut World, kind: RsKind, cfg: SynthConfig) -> WorldResult<Synth> {
        let gid = world.add_guardian(kind)?;
        let mut created = 0usize;
        while created < cfg.objects {
            let aid = world.begin(gid)?;
            // Large batches keep setup cheap for organizations whose commit
            // cost grows with the live set (shadowing's map rewrite).
            let batch = (cfg.objects - created).min(512);
            for i in created..created + batch {
                let object =
                    world.create_atomic(gid, aid, Value::Bytes(vec![0; cfg.value_size]))?;
                world.set_stable(gid, aid, &obj_name(i), Value::heap_ref(object))?;
            }
            let outcome = world.commit(aid)?;
            debug_assert_eq!(outcome, Outcome::Committed);
            created += batch;
        }
        let zipf = Zipf::new(cfg.objects.max(1), cfg.zipf_theta);
        Ok(Synth {
            cfg,
            gid,
            zipf,
            committed: 0,
        })
    }

    /// The guardian hosting the store.
    pub fn guardian(&self) -> GuardianId {
        self.gid
    }

    /// The configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.cfg
    }

    fn handle(&self, world: &mut World, i: usize) -> WorldResult<HeapId> {
        match world.guardian(self.gid)?.stable_value(&obj_name(i)) {
            Some(Value::Ref(ObjRef::Heap(h))) => Ok(h),
            // A uid reference after an on-demand recovery: the object is
            // still on the log; the heap-miss path materializes it.
            Some(Value::Ref(ObjRef::Uid(u))) => match world.demand(self.gid, u)? {
                Some(h) => Ok(h),
                None => Err(argus_guardian::WorldError::Rs(
                    argus_core::RsError::BadState(format!("object {i} dangling: uid {u}")),
                )),
            },
            other => Err(argus_guardian::WorldError::Rs(
                argus_core::RsError::BadState(format!("object {i} unresolved: {other:?}")),
            )),
        }
    }

    /// Runs one update action (optionally with an early-prepare call before
    /// the commit, §4.4).
    pub fn action(
        &mut self,
        world: &mut World,
        rng: &mut DetRng,
        early_prepare: bool,
    ) -> WorldResult<Outcome> {
        let aid = world.begin(self.gid)?;
        let mut touched = Vec::new();
        for _ in 0..self.cfg.writes_per_action {
            let mut i = self.zipf.sample(rng);
            while touched.contains(&i) {
                i = (i + 1) % self.cfg.objects;
            }
            touched.push(i);
            let h = self.handle(world, i)?;
            let fill = (rng.next_u64() & 0xFF) as u8;
            let size = self.cfg.value_size;
            world.write_atomic(self.gid, aid, h, move |v| {
                *v = Value::Bytes(vec![fill; size]);
            })?;
        }
        if rng.gen_bool(self.cfg.new_object_prob) {
            // Create a fresh object and hang it off a touched object: the
            // new object is newly accessible at prepare time.
            let child = world.create_atomic(self.gid, aid, Value::Int(rng.next_u64() as i64))?;
            let parent = self.handle(world, touched[0])?;
            world.write_atomic(self.gid, aid, parent, move |v| {
                *v = Value::Seq(vec![Value::heap_ref(child)]);
            })?;
        }
        if early_prepare {
            world.early_prepare(self.gid, aid)?;
        }
        let outcome = world.commit(aid)?;
        if outcome == Outcome::Committed {
            self.committed += 1;
        }
        Ok(outcome)
    }

    /// Runs `n` update actions.
    pub fn run(&mut self, world: &mut World, rng: &mut DetRng, n: u64) -> WorldResult<u64> {
        let mut committed = 0;
        for _ in 0..n {
            if self.action(world, rng, false)? == Outcome::Committed {
                committed += 1;
            }
        }
        Ok(committed)
    }
}

fn obj_name(i: usize) -> String {
    format!("obj{i}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_survive_crash() {
        let mut world = World::fast();
        let mut synth = Synth::setup(
            &mut world,
            RsKind::Hybrid,
            SynthConfig {
                objects: 16,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = DetRng::new(5);
        synth.run(&mut world, &mut rng, 20).unwrap();
        world.crash(synth.guardian());
        world.restart(synth.guardian()).unwrap();
        // Every object must still resolve.
        for i in 0..16 {
            synth.handle(&mut world, i).unwrap();
        }
    }

    #[test]
    fn new_object_creation_is_recovered() {
        let mut world = World::fast();
        let mut synth = Synth::setup(
            &mut world,
            RsKind::Hybrid,
            SynthConfig {
                objects: 8,
                new_object_prob: 1.0,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = DetRng::new(9);
        let before = world.guardian(synth.guardian()).unwrap().heap.len();
        synth.action(&mut world, &mut rng, false).unwrap();
        world.crash(synth.guardian());
        world.restart(synth.guardian()).unwrap();
        let after = world.guardian(synth.guardian()).unwrap().heap.len();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn early_prepare_path_commits() {
        let mut world = World::fast();
        let mut synth = Synth::setup(
            &mut world,
            RsKind::Hybrid,
            SynthConfig {
                objects: 8,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = DetRng::new(13);
        assert_eq!(
            synth.action(&mut world, &mut rng, true).unwrap(),
            Outcome::Committed
        );
    }
}
