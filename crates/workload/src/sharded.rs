//! The sharded many-guardian mix: a partitioned object space across tens to
//! hundreds of guardians, driven by a zipfian population of simulated users.
//!
//! Each guardian is one *shard* holding a slice of the bank — a few hot
//! accounts plus one flight with a seat counter (account 0 doubles as the
//! airline's revenue account). Every simulated user has a *home shard*
//! computed by O(1) modular routing (`user % shards`); an action begins —
//! and is therefore coordinated — at its user's home guardian, so with a
//! zipfian user population the two-phase-commit coordinator load spreads
//! across every shard instead of piling onto one.
//!
//! Two action kinds, mixed by [`ShardedConfig::reservation_prob`]:
//!
//! * **transfer** — debit a zipf-chosen account at the home shard, credit an
//!   account at a target shard ([`ShardedConfig::cross_shard_prob`] picks a
//!   *different* shard, driving distributed two-phase commit);
//! * **reservation** — debit the user's home account, credit the flight
//!   shard's revenue account, and take one seat from that flight — the
//!   three-write airline booking of the thesis's motivating domains.
//!
//! Both conserve the total balance, and committed reservations account
//! exactly for the seats taken — the run-wide oracles
//! ([`Sharded::total_balance`], [`Sharded::total_seats`]).
//!
//! The driver is [`Contended`](crate::Contended)'s deterministic slot
//! scheduler generalized to a global action budget: `concurrency` slots
//! each perform one transition per round (begin, one lock-acquiring
//! submit, or commit), retries keep their user and plan, and everything
//! draws from one [`DetRng`] — a seed pins the whole run.

use argus_cc::{BackoffConfig, CcFate, CcOutcome};
use argus_guardian::{Outcome, RsKind, World, WorldError, WorldResult};
use argus_objects::{ActionId, GuardianId, HeapId, Value};
use argus_sim::{DetRng, Zipf};
use std::collections::BTreeSet;

/// Parameters for the sharded mix.
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Shards — one guardian each.
    pub shards: usize,
    /// Hot accounts per shard (account 0 is also the shard's revenue
    /// account; must be at least 2).
    pub accounts_per_shard: usize,
    /// Simulated users; each routes to home shard `user % shards`.
    pub users: usize,
    /// Concurrent action slots.
    pub concurrency: usize,
    /// Total actions the run commits.
    pub actions: u64,
    /// Zipf skew over the user population.
    pub user_theta: f64,
    /// Zipf skew over each shard's accounts.
    pub account_theta: f64,
    /// Probability an action's target shard differs from its home shard
    /// (cross-shard two-phase commit).
    pub cross_shard_prob: f64,
    /// Probability an action is an airline reservation instead of a
    /// transfer.
    pub reservation_prob: f64,
    /// Initial balance per account.
    pub initial: i64,
    /// Initial seats per shard's flight.
    pub seats_per_shard: i64,
    /// Retry backoff after an abort (conflict, victim, or timeout).
    pub backoff: BackoffConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            accounts_per_shard: 4,
            users: 1_000,
            concurrency: 16,
            actions: 128,
            user_theta: 0.9,
            account_theta: 0.6,
            cross_shard_prob: 0.4,
            reservation_prob: 0.3,
            initial: 1_000,
            seats_per_shard: 1_000_000,
            backoff: BackoffConfig::default(),
        }
    }
}

/// Counters and traces reported by a run. `PartialEq` so determinism tests
/// can compare whole runs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ShardedStats {
    /// Actions committed (= [`ShardedConfig::actions`]).
    pub committed: u64,
    /// Committed actions that touched more than one shard.
    pub cross_shard: u64,
    /// Committed reservations (each took one seat).
    pub reservations: u64,
    /// Aborted attempts that were retried, by any cause.
    pub retries: u64,
    /// Retries caused by a conflict-abort refusal.
    pub conflicts: u64,
    /// Retries caused by being picked as a deadlock victim.
    pub deadlock_victims: u64,
    /// Retries caused by a lock-wait timeout.
    pub timeouts: u64,
    /// Committed actions per coordinator shard — the evidence that 2PC
    /// coordination spreads instead of piling onto one guardian.
    pub per_shard_commits: Vec<u64>,
    /// Per-action latency in simulated µs, first begin to commit, spanning
    /// retries.
    pub latencies_us: Vec<u64>,
    /// Every action id that was aborted and retried.
    pub aborted: BTreeSet<ActionId>,
    /// Action ids in commit order — the observable schedule.
    pub commit_order: Vec<ActionId>,
}

impl ShardedStats {
    /// Abort rate: retried attempts over all attempts.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed + self.retries;
        if attempts == 0 {
            0.0
        } else {
            self.retries as f64 / attempts as f64
        }
    }

    /// Shards that coordinated at least one commit.
    pub fn coordinating_shards(&self) -> usize {
        self.per_shard_commits.iter().filter(|&&n| n > 0).count()
    }

    /// p99 action latency in simulated µs (first begin → commit, spanning
    /// retries); 0 when nothing committed.
    pub fn p99_latency_us(&self) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * 0.99).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// Peak-to-mean ratio of per-shard coordinator load (1.0 = perfectly
    /// even; 0.0 when nothing committed).
    pub fn coordinator_skew(&self) -> f64 {
        let max = self.per_shard_commits.iter().copied().max().unwrap_or(0);
        if self.committed == 0 || self.per_shard_commits.is_empty() {
            return 0.0;
        }
        let mean = self.committed as f64 / self.per_shard_commits.len() as f64;
        max as f64 / mean
    }
}

/// One write of an action's plan: `delta` applied to `h` at shard `shard`.
#[derive(Debug, Clone, Copy)]
struct PlannedWrite {
    shard: usize,
    h: HeapId,
    delta: i64,
}

/// The immutable plan of one logical action, kept across retries so the
/// same contended objects are re-fought.
#[derive(Debug, Clone)]
struct Plan {
    home: usize,
    writes: Vec<PlannedWrite>,
    cross: bool,
    reservation: bool,
}

/// What a slot does next round.
#[derive(Debug)]
enum SlotState {
    /// No action in flight; may begin once the clock reaches `retry_at`.
    Idle,
    /// Action begun; `next_op` planned writes issued so far.
    Running { aid: ActionId, next_op: usize },
    /// No actions left in the global budget.
    Finished,
}

#[derive(Debug)]
struct Slot {
    state: SlotState,
    plan: Option<Plan>,
    started_at: Option<u64>,
    attempt: u32,
    retry_at: u64,
}

/// A deployed sharded mix.
#[derive(Debug)]
pub struct Sharded {
    cfg: ShardedConfig,
    gids: Vec<GuardianId>,
    /// `accounts[shard][i]` — the shard's hot accounts.
    accounts: Vec<Vec<HeapId>>,
    /// `seats[shard]` — the shard's flight seat counter.
    seats: Vec<HeapId>,
    user_zipf: Zipf,
    account_zipf: Zipf,
}

impl Sharded {
    /// Creates the shard guardians and their objects (one committed setup
    /// action per shard), returning the deployed workload.
    pub fn setup(world: &mut World, kind: RsKind, cfg: ShardedConfig) -> WorldResult<Sharded> {
        assert!(cfg.shards >= 1, "at least one shard");
        assert!(
            cfg.accounts_per_shard >= 2,
            "account 0 is the revenue account; need another to debit"
        );
        let mut gids = Vec::with_capacity(cfg.shards);
        let mut accounts = Vec::with_capacity(cfg.shards);
        let mut seats = Vec::with_capacity(cfg.shards);
        for _ in 0..cfg.shards {
            let gid = world.add_guardian(kind)?;
            let aid = world.begin(gid)?;
            let mut shard_accounts = Vec::with_capacity(cfg.accounts_per_shard);
            for i in 0..cfg.accounts_per_shard {
                let h = world.create_atomic(gid, aid, Value::Int(cfg.initial))?;
                world.set_stable(gid, aid, &format!("acct{i}"), Value::heap_ref(h))?;
                shard_accounts.push(h);
            }
            let h = world.create_atomic(gid, aid, Value::Int(cfg.seats_per_shard))?;
            world.set_stable(gid, aid, "seats", Value::heap_ref(h))?;
            let outcome = world.commit(aid)?;
            debug_assert_eq!(outcome, Outcome::Committed);
            gids.push(gid);
            accounts.push(shard_accounts);
            seats.push(h);
        }
        let user_zipf = Zipf::new(cfg.users.max(1), cfg.user_theta);
        let account_zipf = Zipf::new(cfg.accounts_per_shard, cfg.account_theta);
        Ok(Sharded {
            cfg,
            gids,
            accounts,
            seats,
            user_zipf,
            account_zipf,
        })
    }

    /// The shard guardians, in shard order.
    pub fn shards(&self) -> &[GuardianId] {
        &self.gids
    }

    /// O(1) routing: the home shard of a user.
    pub fn home_shard(&self, user: usize) -> usize {
        user % self.cfg.shards
    }

    /// Draws the next action's plan: a zipf-chosen user routed home, then a
    /// transfer or a reservation with zipf-chosen accounts.
    fn draw_plan(&self, rng: &mut DetRng) -> Plan {
        let user = self.user_zipf.sample(rng);
        let home = self.home_shard(user);
        let cross = self.cfg.shards > 1 && rng.gen_bool(self.cfg.cross_shard_prob);
        let target = if cross {
            let other = rng.gen_range(self.cfg.shards as u64 - 1) as usize;
            (home + 1 + other) % self.cfg.shards
        } else {
            home
        };
        let amount = 1 + rng.gen_range(100) as i64;
        if rng.gen_bool(self.cfg.reservation_prob) {
            // Reservation: pay from home, revenue + one seat at the flight
            // shard (account 0 is the revenue account).
            let mut payer = self.account_zipf.sample(rng);
            if target == home && payer == 0 {
                payer = 1;
            }
            Plan {
                home,
                writes: vec![
                    PlannedWrite {
                        shard: home,
                        h: self.accounts[home][payer],
                        delta: -amount,
                    },
                    PlannedWrite {
                        shard: target,
                        h: self.accounts[target][0],
                        delta: amount,
                    },
                    PlannedWrite {
                        shard: target,
                        h: self.seats[target],
                        delta: -1,
                    },
                ],
                cross,
                reservation: true,
            }
        } else {
            let from = self.account_zipf.sample(rng);
            let mut to = self.account_zipf.sample(rng);
            if target == home && to == from {
                to = (to + 1) % self.cfg.accounts_per_shard;
            }
            Plan {
                home,
                writes: vec![
                    PlannedWrite {
                        shard: home,
                        h: self.accounts[home][from],
                        delta: -amount,
                    },
                    PlannedWrite {
                        shard: target,
                        h: self.accounts[target][to],
                        delta: amount,
                    },
                ],
                cross,
                reservation: false,
            }
        }
    }

    /// Runs the global action budget to completion and reports the stats.
    /// Returns an error — rather than spinning — if the scheduler ever
    /// stalls with no pending event.
    pub fn run(&self, world: &mut World, rng: &mut DetRng) -> WorldResult<ShardedStats> {
        let mut stats = ShardedStats {
            per_shard_commits: vec![0; self.cfg.shards],
            ..ShardedStats::default()
        };
        let mut remaining = self.cfg.actions;
        let mut slots: Vec<Slot> = (0..self.cfg.concurrency)
            .map(|_| Slot {
                state: SlotState::Idle,
                plan: None,
                started_at: None,
                attempt: 0,
                retry_at: 0,
            })
            .collect();

        loop {
            let mut progress = false;
            let mut all_done = true;
            for slot in &mut slots {
                progress |= self.step_slot(world, rng, slot, &mut remaining, &mut stats)?;
                all_done &= matches!(slot.state, SlotState::Finished);
            }
            if all_done {
                return Ok(stats);
            }
            if progress {
                continue;
            }
            // Every slot is parked or backing off: advance the clock to the
            // nearest pending event and expire due lock waits.
            let mut next = world.cc_next_deadline();
            for slot in &slots {
                if matches!(slot.state, SlotState::Idle) {
                    next = Some(next.map_or(slot.retry_at, |n| n.min(slot.retry_at)));
                }
            }
            match next {
                Some(t) if t > world.clock.now() => {
                    world.clock.advance_to(t);
                    world.cc_tick();
                }
                _ => {
                    return Err(WorldError::Rs(argus_core::RsError::BadState(
                        "sharded mix stalled with no pending event (undetected deadlock?)".into(),
                    )))
                }
            }
        }
    }

    /// Performs at most one scheduler transition for `slot`; returns whether
    /// anything happened.
    fn step_slot(
        &self,
        world: &mut World,
        rng: &mut DetRng,
        slot: &mut Slot,
        remaining: &mut u64,
        stats: &mut ShardedStats,
    ) -> WorldResult<bool> {
        let now = world.clock.now();
        match slot.state {
            SlotState::Finished => Ok(false),
            SlotState::Idle => {
                if slot.plan.is_none() {
                    // Take the next action from the global budget.
                    if *remaining == 0 {
                        slot.state = SlotState::Finished;
                        return Ok(true);
                    }
                    *remaining -= 1;
                    slot.plan = Some(self.draw_plan(rng));
                    slot.started_at = Some(now);
                }
                if now < slot.retry_at {
                    return Ok(false);
                }
                let home = slot.plan.as_ref().expect("plan just drawn").home;
                let aid = world.begin(self.gids[home])?;
                slot.state = SlotState::Running { aid, next_op: 0 };
                Ok(true)
            }
            SlotState::Running { aid, next_op } => {
                if let Some(fate) = world.cc_fate(aid) {
                    match fate {
                        CcFate::Victim => stats.deadlock_victims += 1,
                        CcFate::TimedOut => stats.timeouts += 1,
                        CcFate::CrashDrained => {}
                    }
                    self.note_retry(world, slot, aid, stats, rng);
                    return Ok(true);
                }
                if world.cc_blocked(aid) {
                    return Ok(false);
                }
                let plan = slot.plan.as_ref().expect("running slot has a plan");
                if next_op < plan.writes.len() {
                    let PlannedWrite { shard, h, delta } = plan.writes[next_op];
                    match world.submit_write_atomic(self.gids[shard], aid, h, move |v| {
                        if let Value::Int(n) = v {
                            *n += delta;
                        }
                    })? {
                        // Parked counts as issued: the grant runs the write.
                        CcOutcome::Done | CcOutcome::Parked => {
                            slot.state = SlotState::Running {
                                aid,
                                next_op: next_op + 1,
                            };
                        }
                        CcOutcome::Conflict => {
                            stats.conflicts += 1;
                            world.abort_local(aid);
                            self.note_retry(world, slot, aid, stats, rng);
                        }
                    }
                    Ok(true)
                } else {
                    let outcome = world.commit(aid)?;
                    debug_assert_eq!(outcome, Outcome::Committed);
                    let plan = slot.plan.take().expect("running slot has a plan");
                    stats.committed += 1;
                    stats.per_shard_commits[plan.home] += 1;
                    stats.cross_shard += u64::from(plan.cross);
                    stats.reservations += u64::from(plan.reservation);
                    stats.commit_order.push(aid);
                    let started = slot.started_at.take().expect("action has a start time");
                    stats
                        .latencies_us
                        .push(world.clock.now().saturating_sub(started));
                    slot.attempt = 0;
                    slot.retry_at = world.clock.now();
                    slot.state = SlotState::Idle;
                    Ok(true)
                }
            }
        }
    }

    /// Books an aborted attempt and schedules the backoff.
    fn note_retry(
        &self,
        world: &mut World,
        slot: &mut Slot,
        aid: ActionId,
        stats: &mut ShardedStats,
        rng: &mut DetRng,
    ) {
        stats.retries += 1;
        stats.aborted.insert(aid);
        world.obs().inc("cc.retries");
        let delay = self.cfg.backoff.delay_us(slot.attempt, rng);
        slot.attempt += 1;
        slot.retry_at = world.clock.now() + delay;
        slot.state = SlotState::Idle;
    }

    /// Sums every account's committed balance across every shard —
    /// transfers and reservation payments both conserve it.
    pub fn total_balance(&self, world: &World) -> WorldResult<i64> {
        let mut total = 0;
        for (shard, gid) in self.gids.iter().enumerate() {
            let guardian = world.guardian(*gid)?;
            for &h in &self.accounts[shard] {
                if let Ok(Value::Int(balance)) = guardian.heap.read_value(h, None) {
                    total += balance;
                }
            }
        }
        Ok(total)
    }

    /// The invariant value [`Sharded::total_balance`] must match.
    pub fn expected_total(&self) -> i64 {
        (self.cfg.shards * self.cfg.accounts_per_shard) as i64 * self.cfg.initial
    }

    /// Sums every flight's committed seat count across every shard.
    pub fn total_seats(&self, world: &World) -> WorldResult<i64> {
        let mut total = 0;
        for (shard, gid) in self.gids.iter().enumerate() {
            let guardian = world.guardian(*gid)?;
            if let Ok(Value::Int(n)) = guardian.heap.read_value(self.seats[shard], None) {
                total += n;
            }
        }
        Ok(total)
    }

    /// The seat count [`Sharded::total_seats`] must show after `stats`:
    /// exactly the committed reservations are gone, no leaked decrement
    /// from any aborted attempt.
    pub fn expected_seats(&self, stats: &ShardedStats) -> i64 {
        self.cfg.shards as i64 * self.cfg.seats_per_shard - stats.reservations as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_cc::CcPolicy;
    use argus_guardian::WorldConfig;

    fn run_once(policy: CcPolicy, seed: u64, cfg: ShardedConfig) -> (Sharded, ShardedStats, World) {
        let mut world =
            World::with_config(argus_sim::CostModel::fast(), WorldConfig::with_cc(policy));
        let mix = Sharded::setup(&mut world, RsKind::Hybrid, cfg).unwrap();
        let mut rng = DetRng::new(seed);
        let stats = mix.run(&mut world, &mut rng).unwrap();
        (mix, stats, world)
    }

    #[test]
    fn every_policy_completes_and_conserves_invariants() {
        for policy in [
            CcPolicy::ConflictAbort,
            CcPolicy::Blocking,
            CcPolicy::Timeout,
        ] {
            let cfg = ShardedConfig::default();
            let (mix, stats, world) = run_once(policy, 42, cfg);
            assert_eq!(stats.committed, cfg.actions, "{policy:?}");
            assert_eq!(
                mix.total_balance(&world).unwrap(),
                mix.expected_total(),
                "{policy:?}"
            );
            assert_eq!(
                mix.total_seats(&world).unwrap(),
                mix.expected_seats(&stats),
                "{policy:?}"
            );
            assert!(stats.cross_shard > 0, "{policy:?}: no cross-shard commits");
            assert!(stats.reservations > 0, "{policy:?}: no reservations");
        }
    }

    #[test]
    fn coordinators_spread_across_shards() {
        let cfg = ShardedConfig {
            actions: 256,
            ..ShardedConfig::default()
        };
        let (_, stats, _) = run_once(CcPolicy::Blocking, 7, cfg);
        assert!(
            stats.coordinating_shards() >= cfg.shards / 2,
            "coordination piled up: {:?}",
            stats.per_shard_commits
        );
    }

    #[test]
    fn same_seed_same_run() {
        for policy in [CcPolicy::ConflictAbort, CcPolicy::Blocking] {
            let (_, a, _) = run_once(policy, 9, ShardedConfig::default());
            let (_, b, _) = run_once(policy, 9, ShardedConfig::default());
            assert_eq!(a, b, "{policy:?}");
        }
    }

    #[test]
    fn routing_is_modular() {
        let mut world = World::fast();
        let mix = Sharded::setup(&mut world, RsKind::Simple, ShardedConfig::default()).unwrap();
        assert_eq!(mix.home_shard(0), 0);
        assert_eq!(mix.home_shard(9), 1);
        assert_eq!(mix.home_shard(8), 0);
    }
}
