//! The contended transfer mix: a high-contention zipfian workload that
//! deadlocks by construction, driven by a deterministic slot scheduler.
//!
//! Each of `concurrency` slots runs transfers over a small hot set of
//! accounts at one guardian. A transfer write-locks its debit account, then
//! its credit account, in *request* order — no global lock ordering — so two
//! slots picking the same hot pair in opposite directions wait on each other
//! (§2.4.1: running actions delay one another by holding locks). What
//! happens next is the concurrency-control policy's call
//! ([`argus_guardian::WorldConfig::cc`]):
//!
//! * **conflict-abort** — the submit is refused; the slot aborts the action
//!   and retries after a seeded full-jitter backoff ([`BackoffConfig`]);
//! * **blocking** — the slot parks FIFO; the wait-for-graph check breaks any
//!   cycle by aborting the youngest member, which retries with backoff;
//! * **timeout** — the slot parks with a deadline; when every slot is stuck
//!   the driver advances the clock to the next deadline and lets
//!   [`World::cc_tick`] expire a waiter, which retries with backoff.
//!
//! One slot performs exactly one scheduler transition per round — begin,
//! one lock-acquiring submit, or commit — so locks are held across rounds
//! and slots genuinely interleave. The driver draws only from
//! [`DetRng`] and the simulated clock: a seed pins down the whole run —
//! schedule, abort set, commit order, and final balances.

use argus_cc::{BackoffConfig, CcFate, CcOutcome};
use argus_guardian::{Outcome, RsKind, World, WorldError, WorldResult};
use argus_objects::{ActionId, GuardianId, HeapId, Value};
use argus_sim::{DetRng, Zipf};
use std::collections::BTreeSet;

/// Parameters for the contended mix.
#[derive(Debug, Clone, Copy)]
pub struct ContendedConfig {
    /// Hot accounts at the single guardian — small on purpose.
    pub accounts: usize,
    /// Concurrent transfer slots.
    pub concurrency: usize,
    /// Transfers each slot must commit.
    pub transfers_per_slot: u64,
    /// Initial balance per account.
    pub initial: i64,
    /// Zipf skew over accounts — high on purpose.
    pub zipf_theta: f64,
    /// Retry backoff after an abort (conflict, victim, or timeout).
    pub backoff: BackoffConfig,
}

impl Default for ContendedConfig {
    fn default() -> Self {
        Self {
            accounts: 8,
            concurrency: 8,
            transfers_per_slot: 12,
            initial: 1_000,
            zipf_theta: 0.9,
            backoff: BackoffConfig::default(),
        }
    }
}

/// Counters and traces reported by a run. `PartialEq` so determinism tests
/// can compare whole runs: same seed ⇒ equal stats, including the commit
/// order and the abort set.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ContendedStats {
    /// Transfers committed (= `concurrency × transfers_per_slot`).
    pub committed: u64,
    /// Aborted attempts that were retried, by any cause.
    pub retries: u64,
    /// Retries caused by a conflict-abort refusal.
    pub conflicts: u64,
    /// Retries caused by being picked as a deadlock victim.
    pub deadlock_victims: u64,
    /// Retries caused by a lock-wait timeout.
    pub timeouts: u64,
    /// Per-transfer latency in simulated µs, first `begin` to commit,
    /// spanning every retry of that transfer.
    pub latencies_us: Vec<u64>,
    /// Every action id that was aborted and retried.
    pub aborted: BTreeSet<ActionId>,
    /// Action ids in commit order — the observable schedule.
    pub commit_order: Vec<ActionId>,
}

impl ContendedStats {
    /// Abort rate: retried attempts over all attempts.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed + self.retries;
        if attempts == 0 {
            0.0
        } else {
            self.retries as f64 / attempts as f64
        }
    }

    /// The p99 transfer latency in simulated µs (0 when empty).
    pub fn p99_latency_us(&self) -> u64 {
        percentile(&self.latencies_us, 0.99)
    }
}

fn percentile(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// What a slot does next round.
#[derive(Debug)]
enum SlotState {
    /// No action in flight; may begin once the clock reaches `retry_at`.
    Idle,
    /// Action begun; `next_op` locks issued so far (0, 1, or 2).
    Running { aid: ActionId, next_op: usize },
    /// All transfers committed.
    Finished,
}

#[derive(Debug)]
struct Slot {
    state: SlotState,
    /// Transfers still to commit.
    remaining: u64,
    /// Accounts of the in-progress transfer — kept across retries, so the
    /// same contended pair is re-attempted (that is the retry semantics the
    /// backoff exists for).
    pair: Option<(usize, usize)>,
    amount: i64,
    /// When the first attempt of the current transfer began.
    started_at: Option<u64>,
    /// Aborted attempts of the current transfer so far.
    attempt: u32,
    /// Clock time before which the slot stays idle (backoff).
    retry_at: u64,
}

/// A deployed contended mix.
#[derive(Debug)]
pub struct Contended {
    cfg: ContendedConfig,
    gid: GuardianId,
    accounts: Vec<HeapId>,
    zipf: Zipf,
}

impl Contended {
    /// Creates the guardian and its hot accounts (one committed setup
    /// action), returning the deployed workload.
    pub fn setup(world: &mut World, kind: RsKind, cfg: ContendedConfig) -> WorldResult<Contended> {
        let gid = world.add_guardian(kind)?;
        let aid = world.begin(gid)?;
        let mut accounts = Vec::with_capacity(cfg.accounts);
        for i in 0..cfg.accounts {
            let h = world.create_atomic(gid, aid, Value::Int(cfg.initial))?;
            world.set_stable(gid, aid, &format!("hot{i}"), Value::heap_ref(h))?;
            accounts.push(h);
        }
        let outcome = world.commit(aid)?;
        debug_assert_eq!(outcome, Outcome::Committed);
        let zipf = Zipf::new(cfg.accounts.max(1), cfg.zipf_theta);
        Ok(Contended {
            cfg,
            gid,
            accounts,
            zipf,
        })
    }

    /// The guardian hosting the hot accounts.
    pub fn guardian(&self) -> GuardianId {
        self.gid
    }

    /// Runs every slot to completion and reports the stats. Returns an
    /// error — rather than spinning — if the scheduler ever stalls with no
    /// pending event, so a would-be hang fails fast and loudly.
    pub fn run(&self, world: &mut World, rng: &mut DetRng) -> WorldResult<ContendedStats> {
        let mut stats = ContendedStats::default();
        let mut slots: Vec<Slot> = (0..self.cfg.concurrency)
            .map(|_| Slot {
                state: SlotState::Idle,
                remaining: self.cfg.transfers_per_slot,
                pair: None,
                amount: 0,
                started_at: None,
                attempt: 0,
                retry_at: 0,
            })
            .collect();

        loop {
            let mut progress = false;
            let mut all_done = true;
            for slot in &mut slots {
                progress |= self.step_slot(world, rng, slot, &mut stats)?;
                all_done &= matches!(slot.state, SlotState::Finished);
            }
            if all_done {
                return Ok(stats);
            }
            if progress {
                continue;
            }
            // Every slot is parked or backing off: advance the clock to the
            // nearest pending event and expire due lock waits.
            let mut next = world.cc_next_deadline();
            for slot in &slots {
                if matches!(slot.state, SlotState::Idle) && slot.remaining > 0 {
                    next = Some(next.map_or(slot.retry_at, |n| n.min(slot.retry_at)));
                }
            }
            match next {
                Some(t) if t > world.clock.now() => {
                    world.clock.advance_to(t);
                    world.cc_tick();
                }
                _ => {
                    return Err(WorldError::Rs(argus_core::RsError::BadState(
                        "contended mix stalled with no pending event (undetected deadlock?)".into(),
                    )))
                }
            }
        }
    }

    /// Performs at most one scheduler transition for `slot`; returns whether
    /// anything happened.
    fn step_slot(
        &self,
        world: &mut World,
        rng: &mut DetRng,
        slot: &mut Slot,
        stats: &mut ContendedStats,
    ) -> WorldResult<bool> {
        let now = world.clock.now();
        match slot.state {
            SlotState::Finished => Ok(false),
            SlotState::Idle => {
                if slot.remaining == 0 {
                    slot.state = SlotState::Finished;
                    return Ok(true);
                }
                if now < slot.retry_at {
                    return Ok(false);
                }
                // First attempt picks the pair and the amount; retries keep
                // them, so the same contended pair is re-fought.
                if slot.pair.is_none() {
                    let from = self.zipf.sample(rng);
                    let mut to = self.zipf.sample(rng);
                    if to == from {
                        to = (to + 1) % self.cfg.accounts;
                    }
                    slot.pair = Some((from, to));
                    slot.amount = 1 + rng.gen_range(100) as i64;
                    slot.started_at = Some(now);
                }
                let aid = world.begin(self.gid)?;
                slot.state = SlotState::Running { aid, next_op: 0 };
                Ok(true)
            }
            SlotState::Running { aid, next_op } => {
                if let Some(fate) = world.cc_fate(aid) {
                    // The scheduler gave up on this action (deadlock victim
                    // or expired lock wait) and already aborted it.
                    match fate {
                        CcFate::Victim => stats.deadlock_victims += 1,
                        CcFate::TimedOut => stats.timeouts += 1,
                        CcFate::CrashDrained => {}
                    }
                    self.note_retry(world, slot, aid, stats, rng);
                    return Ok(true);
                }
                if world.cc_blocked(aid) {
                    return Ok(false);
                }
                if next_op < 2 {
                    let (from, to) = slot.pair.expect("running slot has a pair");
                    let (h, delta) = if next_op == 0 {
                        (self.accounts[from], -slot.amount)
                    } else {
                        (self.accounts[to], slot.amount)
                    };
                    match world.submit_write_atomic(self.gid, aid, h, move |v| {
                        if let Value::Int(balance) = v {
                            *balance += delta;
                        }
                    })? {
                        // Parked counts as issued: the grant runs the write.
                        CcOutcome::Done | CcOutcome::Parked => {
                            slot.state = SlotState::Running {
                                aid,
                                next_op: next_op + 1,
                            };
                        }
                        CcOutcome::Conflict => {
                            stats.conflicts += 1;
                            world.abort_local(aid);
                            self.note_retry(world, slot, aid, stats, rng);
                        }
                    }
                    Ok(true)
                } else {
                    let outcome = world.commit(aid)?;
                    debug_assert_eq!(outcome, Outcome::Committed);
                    stats.committed += 1;
                    stats.commit_order.push(aid);
                    let started = slot.started_at.take().expect("transfer has a start time");
                    stats
                        .latencies_us
                        .push(world.clock.now().saturating_sub(started));
                    slot.remaining -= 1;
                    slot.pair = None;
                    slot.attempt = 0;
                    slot.retry_at = world.clock.now();
                    slot.state = SlotState::Idle;
                    Ok(true)
                }
            }
        }
    }

    /// Books an aborted attempt and schedules the backoff.
    fn note_retry(
        &self,
        world: &mut World,
        slot: &mut Slot,
        aid: ActionId,
        stats: &mut ContendedStats,
        rng: &mut DetRng,
    ) {
        stats.retries += 1;
        stats.aborted.insert(aid);
        world.obs().inc("cc.retries");
        let delay = self.cfg.backoff.delay_us(slot.attempt, rng);
        slot.attempt += 1;
        slot.retry_at = world.clock.now() + delay;
        slot.state = SlotState::Idle;
    }

    /// Sums every hot account's committed balance — transfers conserve it.
    pub fn total_balance(&self, world: &World) -> WorldResult<i64> {
        let guardian = world.guardian(self.gid)?;
        let mut total = 0;
        for &h in &self.accounts {
            if let Ok(Value::Int(balance)) = guardian.heap.read_value(h, None) {
                total += balance;
            }
        }
        Ok(total)
    }

    /// The invariant value [`Contended::total_balance`] must match.
    pub fn expected_total(&self) -> i64 {
        self.cfg.accounts as i64 * self.cfg.initial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_cc::CcPolicy;
    use argus_guardian::WorldConfig;

    fn run_once(policy: CcPolicy, seed: u64) -> (ContendedStats, i64, i64) {
        let mut world =
            World::with_config(argus_sim::CostModel::fast(), WorldConfig::with_cc(policy));
        let mix = Contended::setup(&mut world, RsKind::Hybrid, ContendedConfig::default()).unwrap();
        let mut rng = DetRng::new(seed);
        let stats = mix.run(&mut world, &mut rng).unwrap();
        let total = mix.total_balance(&world).unwrap();
        (stats, total, mix.expected_total())
    }

    #[test]
    fn every_policy_completes_and_conserves_balance() {
        for policy in [
            CcPolicy::ConflictAbort,
            CcPolicy::Blocking,
            CcPolicy::Timeout,
        ] {
            let (stats, total, expected) = run_once(policy, 42);
            assert_eq!(stats.committed, 8 * 12, "{policy:?}");
            assert_eq!(total, expected, "{policy:?}");
            assert_eq!(stats.latencies_us.len() as u64, stats.committed);
        }
    }

    #[test]
    fn blocking_mode_deadlocks_by_construction() {
        let (stats, _, _) = run_once(CcPolicy::Blocking, 42);
        assert!(
            stats.deadlock_victims > 0,
            "expected deadlocks in the contended mix: {stats:?}"
        );
    }

    #[test]
    fn same_seed_same_run() {
        for policy in [
            CcPolicy::ConflictAbort,
            CcPolicy::Blocking,
            CcPolicy::Timeout,
        ] {
            let (a, total_a, _) = run_once(policy, 7);
            let (b, total_b, _) = run_once(policy, 7);
            assert_eq!(a, b, "{policy:?}");
            assert_eq!(total_a, total_b, "{policy:?}");
        }
    }
}
