//! A shared logical clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A logical clock measured in microseconds.
///
/// The clock is shared by cloning; all clones observe and advance the same
/// instant. Devices advance it as they charge for simulated I/O, so "elapsed
/// simulated time" is simply the difference of two [`SimClock::now`] readings.
///
/// # Examples
///
/// ```
/// use argus_sim::SimClock;
///
/// let clock = SimClock::new();
/// let start = clock.now();
/// clock.advance(250);
/// assert_eq!(clock.now() - start, 250);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current logical time in microseconds.
    pub fn now(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }

    /// Advances the clock by `micros` microseconds and returns the new time.
    pub fn advance(&self, micros: u64) -> u64 {
        self.micros.fetch_add(micros, Ordering::Relaxed) + micros
    }

    /// Moves the clock forward to `deadline` if it is in the future.
    ///
    /// Used by the event queue: executing an event at time `t` must never
    /// move time backwards.
    pub fn advance_to(&self, deadline: u64) {
        self.micros.fetch_max(deadline, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        c.advance(10);
        c.advance(5);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(7);
        assert_eq!(b.now(), 7);
        b.advance(3);
        assert_eq!(a.now(), 10);
    }

    #[test]
    fn advance_to_never_rewinds() {
        let c = SimClock::new();
        c.advance(100);
        c.advance_to(50);
        assert_eq!(c.now(), 100);
        c.advance_to(150);
        assert_eq!(c.now(), 150);
    }
}
