//! A minimal discrete-event queue.

use crate::SimClock;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled for a point in logical time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Delivery time in microseconds.
    pub at: u64,
    /// Tie-break sequence number; preserves FIFO order among events
    /// scheduled for the same instant.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event scheduler over a [`SimClock`].
///
/// Events scheduled for the same instant pop in insertion order, so a run is
/// a pure function of the inputs.
///
/// # Examples
///
/// ```
/// use argus_sim::{EventQueue, SimClock};
///
/// let clock = SimClock::new();
/// let mut q = EventQueue::new(clock.clone());
/// q.schedule_in(10, "b");
/// q.schedule_in(5, "a");
/// assert_eq!(q.pop(), Some("a"));
/// assert_eq!(clock.now(), 5);
/// assert_eq!(q.pop(), Some("b"));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    clock: SimClock,
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue over the given clock.
    pub fn new(clock: SimClock) -> Self {
        Self {
            clock,
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute time `at` (clamped to now if in the past).
    pub fn schedule_at(&mut self, at: u64, event: E) {
        let at = at.max(self.clock.now());
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` `delay` microseconds from now.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule_at(self.clock.now() + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its delivery time.
    pub fn pop(&mut self) -> Option<E> {
        let scheduled = self.heap.pop()?;
        self.clock.advance_to(scheduled.at);
        Some(scheduled.event)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event, e.g. when a simulated node crashes and its
    /// in-flight work disappears.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new(SimClock::new());
        q.schedule_at(30, 3);
        q.schedule_at(10, 1);
        q.schedule_at(20, 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new(SimClock::new());
        q.schedule_at(5, "first");
        q.schedule_at(5, "second");
        q.schedule_at(5, "third");
        assert_eq!(q.pop(), Some("first"));
        assert_eq!(q.pop(), Some("second"));
        assert_eq!(q.pop(), Some("third"));
    }

    #[test]
    fn pop_advances_clock() {
        let clock = SimClock::new();
        let mut q = EventQueue::new(clock.clone());
        q.schedule_at(42, ());
        q.pop();
        assert_eq!(clock.now(), 42);
    }

    #[test]
    fn past_events_run_now() {
        let clock = SimClock::new();
        clock.advance(100);
        let mut q = EventQueue::new(clock.clone());
        q.schedule_at(10, ());
        q.pop();
        assert_eq!(clock.now(), 100);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new(SimClock::new());
        q.schedule_in(1, ());
        q.schedule_in(2, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
