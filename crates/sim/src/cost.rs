//! Device cost model and I/O accounting.

use crate::SimClock;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The kind of device operation being charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A page read that continues a sequential scan.
    SeqRead,
    /// A page read at an arbitrary address (pays a seek).
    RandRead,
    /// A page write appended at the device head (no seek).
    SeqWrite,
    /// A page write at an arbitrary address (pays a seek).
    RandWrite,
    /// A synchronous barrier: everything buffered is on the platter after
    /// this returns.
    Force,
}

/// Latency parameters for the simulated stable-storage device, in
/// microseconds per operation.
///
/// The defaults are loosely calibrated to an early-80s Winchester disk
/// (~30 ms seek, ~10 ms rotational + transfer per page) because the thesis's
/// claims are about *ratios* between schemes under seek-dominated I/O, which
/// such a device makes vivid. Experiments can substitute faster profiles; the
/// orderings the thesis predicts are preserved.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Cost of a sequential page read.
    pub seq_read_us: u64,
    /// Cost of a random page read (seek + read).
    pub rand_read_us: u64,
    /// Cost of a sequential page write.
    pub seq_write_us: u64,
    /// Cost of a random page write (seek + write).
    pub rand_write_us: u64,
    /// Cost of a force barrier on top of the writes it flushes.
    pub force_us: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            seq_read_us: 10_000,
            rand_read_us: 40_000,
            seq_write_us: 10_000,
            rand_write_us: 40_000,
            force_us: 5_000,
        }
    }
}

impl CostModel {
    /// A much faster profile, useful to keep fault-injection torture runs
    /// cheap while preserving relative costs.
    pub fn fast() -> Self {
        Self {
            seq_read_us: 10,
            rand_read_us: 40,
            seq_write_us: 10,
            rand_write_us: 40,
            force_us: 5,
        }
    }

    /// Returns the charge for one operation of the given kind.
    pub fn cost_of(&self, kind: OpKind) -> u64 {
        match kind {
            OpKind::SeqRead => self.seq_read_us,
            OpKind::RandRead => self.rand_read_us,
            OpKind::SeqWrite => self.seq_write_us,
            OpKind::RandWrite => self.rand_write_us,
            OpKind::Force => self.force_us,
        }
    }
}

/// Shared, monotonically growing I/O counters for one device.
///
/// Clones share the same counters, mirroring [`SimClock`]. Every counter is
/// cumulative over the device's lifetime; experiments subtract snapshots.
#[derive(Debug, Clone, Default)]
pub struct DeviceStats {
    inner: Arc<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    seq_reads: AtomicU64,
    rand_reads: AtomicU64,
    seq_writes: AtomicU64,
    rand_writes: AtomicU64,
    forces: AtomicU64,
    busy_us: AtomicU64,
}

/// A point-in-time snapshot of [`DeviceStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Sequential page reads.
    pub seq_reads: u64,
    /// Random page reads.
    pub rand_reads: u64,
    /// Sequential page writes.
    pub seq_writes: u64,
    /// Random page writes.
    pub rand_writes: u64,
    /// Force barriers.
    pub forces: u64,
    /// Total simulated device-busy time in microseconds.
    pub busy_us: u64,
}

impl StatsSnapshot {
    /// Total page reads of either kind.
    pub fn reads(&self) -> u64 {
        self.seq_reads + self.rand_reads
    }

    /// Total page writes of either kind.
    pub fn writes(&self) -> u64 {
        self.seq_writes + self.rand_writes
    }

    /// Component-wise difference `self - earlier`.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            seq_reads: self.seq_reads - earlier.seq_reads,
            rand_reads: self.rand_reads - earlier.rand_reads,
            seq_writes: self.seq_writes - earlier.seq_writes,
            rand_writes: self.rand_writes - earlier.rand_writes,
            forces: self.forces - earlier.forces,
            busy_us: self.busy_us - earlier.busy_us,
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} (seq {} / rand {}), writes={} (seq {} / rand {}), forces={}, busy={}us",
            self.reads(),
            self.seq_reads,
            self.rand_reads,
            self.writes(),
            self.seq_writes,
            self.rand_writes,
            self.forces,
            self.busy_us
        )
    }
}

impl DeviceStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one operation of `kind` against the model, advancing the
    /// clock by the operation's cost.
    pub fn charge(&self, kind: OpKind, model: &CostModel, clock: &SimClock) {
        let counter = match kind {
            OpKind::SeqRead => &self.inner.seq_reads,
            OpKind::RandRead => &self.inner.rand_reads,
            OpKind::SeqWrite => &self.inner.seq_writes,
            OpKind::RandWrite => &self.inner.rand_writes,
            OpKind::Force => &self.inner.forces,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        let cost = model.cost_of(kind);
        self.inner.busy_us.fetch_add(cost, Ordering::Relaxed);
        clock.advance(cost);
    }

    /// Bumps the counter for `kind` without charging any time — used by
    /// layered devices (e.g. the mirrored disk's per-leg tallies) that
    /// account raw operations separately from logical ones.
    pub fn count(&self, kind: OpKind) {
        let counter = match kind {
            OpKind::SeqRead => &self.inner.seq_reads,
            OpKind::RandRead => &self.inner.rand_reads,
            OpKind::SeqWrite => &self.inner.seq_writes,
            OpKind::RandWrite => &self.inner.rand_writes,
            OpKind::Force => &self.inner.forces,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Charges `cost_us` of busy time (advancing the clock) without bumping
    /// any operation counter — the time-only half of [`DeviceStats::charge`].
    pub fn add_busy(&self, cost_us: u64, clock: &SimClock) {
        self.inner.busy_us.fetch_add(cost_us, Ordering::Relaxed);
        clock.advance(cost_us);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            seq_reads: self.inner.seq_reads.load(Ordering::Relaxed),
            rand_reads: self.inner.rand_reads.load(Ordering::Relaxed),
            seq_writes: self.inner.seq_writes.load(Ordering::Relaxed),
            rand_writes: self.inner.rand_writes.load(Ordering::Relaxed),
            forces: self.inner.forces.load(Ordering::Relaxed),
            busy_us: self.inner.busy_us.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_counts_and_advances_clock() {
        let stats = DeviceStats::new();
        let clock = SimClock::new();
        let model = CostModel::default();
        stats.charge(OpKind::SeqWrite, &model, &clock);
        stats.charge(OpKind::Force, &model, &clock);
        let s = stats.snapshot();
        assert_eq!(s.seq_writes, 1);
        assert_eq!(s.forces, 1);
        assert_eq!(s.busy_us, model.seq_write_us + model.force_us);
        assert_eq!(clock.now(), s.busy_us);
    }

    #[test]
    fn snapshot_difference() {
        let stats = DeviceStats::new();
        let clock = SimClock::new();
        let model = CostModel::fast();
        stats.charge(OpKind::RandRead, &model, &clock);
        let before = stats.snapshot();
        stats.charge(OpKind::RandRead, &model, &clock);
        stats.charge(OpKind::SeqRead, &model, &clock);
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.rand_reads, 1);
        assert_eq!(delta.seq_reads, 1);
        assert_eq!(delta.reads(), 2);
        assert_eq!(delta.writes(), 0);
    }

    #[test]
    fn count_and_add_busy_split_the_charge() {
        let stats = DeviceStats::new();
        let clock = SimClock::new();
        let model = CostModel::fast();
        stats.count(OpKind::SeqWrite);
        let s = stats.snapshot();
        assert_eq!(s.seq_writes, 1);
        assert_eq!(s.busy_us, 0);
        assert_eq!(clock.now(), 0);
        stats.add_busy(model.seq_write_us, &clock);
        let s = stats.snapshot();
        assert_eq!(s.seq_writes, 1);
        assert_eq!(s.busy_us, model.seq_write_us);
        assert_eq!(clock.now(), model.seq_write_us);
    }

    #[test]
    fn clones_share_counters() {
        let stats = DeviceStats::new();
        let other = stats.clone();
        let clock = SimClock::new();
        let model = CostModel::fast();
        other.charge(OpKind::SeqWrite, &model, &clock);
        assert_eq!(stats.snapshot().seq_writes, 1);
    }
}
