//! Deterministic simulation substrate for the Argus reliable-storage stack.
//!
//! The thesis assumes real stable-storage devices and a real distributed
//! system; this crate supplies deterministic stand-ins so that every
//! experiment and every fault-injection run is exactly reproducible:
//!
//! * [`SimClock`] — a shared logical clock in microseconds. Device models and
//!   the network charge time against it instead of sleeping.
//! * [`DetRng`] — a small, seedable xorshift64* generator with the uniform and
//!   zipfian draws the workload generators need. We deliberately avoid
//!   platform entropy: a seed fully determines a run.
//! * [`CostModel`] / [`DeviceStats`] — the I/O cost accounting used to report
//!   simulated device time for the write-path and recovery experiments.
//! * [`EventQueue`] — a tiny discrete-event scheduler used by the simulated
//!   network in `argus-guardian`.

mod clock;
mod cost;
mod events;
mod rng;

pub use clock::SimClock;
pub use cost::{CostModel, DeviceStats, OpKind, StatsSnapshot};
pub use events::{EventQueue, Scheduled};
pub use rng::{DetRng, Zipf};
