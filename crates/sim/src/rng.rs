//! A deterministic random-number generator.

/// A seedable xorshift64* generator.
///
/// Every workload, fault plan, and network-delay draw in the repository flows
/// through this generator, so a single `u64` seed pins down an entire run.
/// The generator is intentionally not cryptographic; it only has to be fast
/// and well-distributed for workload synthesis.
///
/// # Examples
///
/// ```
/// use argus_sim::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant because xorshift has an all-zero fixed point.
    pub fn new(seed: u64) -> Self {
        let state = if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        };
        Self { state }
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* (Vigna). Period 2^64 - 1.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns a value uniform in `[0, bound)`. Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Multiply-shift bounded draw (Lemire); bias is negligible for the
        // bounds used by workloads and acceptable for simulation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a value uniform in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_between range must be non-empty");
        lo + self.gen_range(hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Returns a uniform f64 in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Splits off an independent generator, e.g. one per guardian.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64() | 1)
    }
}

/// A zipfian index sampler over `[0, n)` with exponent `theta`.
///
/// Precomputes the harmonic normalizer once, then samples by inverse CDF
/// walk over a cached prefix plus rejection for the tail — adequate for the
/// `n` used in workloads (up to a few hundred thousand).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `[0, n)`. `theta = 0` is uniform; `theta ~ 1`
    /// is the classic web-like skew. Panics if `n == 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty domain");
        let mut weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating-point shortfall at the end.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Self { cdf: weights }
    }

    /// Draws an index using `rng`.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.gen_f64();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

impl DetRng {
    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = DetRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            assert!(r.gen_range(17) < 17);
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut r = DetRng::new(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(4) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = DetRng::new(11);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_rate_is_roughly_right() {
        let mut r = DetRng::new(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut a = DetRng::new(9);
        let mut b = a.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut r = DetRng::new(21);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "count = {c}");
        }
    }

    #[test]
    fn zipf_skews_toward_head() {
        let z = Zipf::new(100, 0.99);
        let mut r = DetRng::new(22);
        let mut head = 0usize;
        for _ in 0..10_000 {
            if z.sample(&mut r) < 10 {
                head += 1;
            }
        }
        // With theta ~1 the first 10% of keys should draw well over half.
        assert!(head > 5_000, "head = {head}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(31);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
