#!/usr/bin/env bash
# Static gates: clippy with warnings denied, plus rustfmt drift. Offline —
# both tools ship with the pinned toolchain. Called from scripts/verify.sh;
# run directly for a faster loop while fixing findings.

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo clippy -q --offline --workspace --all-targets -- -D warnings
run cargo fmt --check

echo "lint: OK"
