#!/usr/bin/env bash
# Benchmark driver: regenerates the headline experiment tables and writes
# machine-readable artifacts (BENCH_<id>.json) for tracking across commits.
#
#   scripts/bench.sh             # E1 E2 E12-E21 -> BENCH_*.json in repo root
#   scripts/bench.sh OUTDIR      # artifacts under OUTDIR instead
#   scripts/bench.sh OUTDIR E12  # subset of experiments
#
# The human-readable tables (plus each run's obs metrics report) stream to
# stdout; the JSON artifacts hold the same tables structurally. E18/E19 are
# wall-clock benches on real files: they default to the OS temp dir, and
# honor ARGUS_BENCH_DIR (point it at /dev/shm for tmpfs or at a real disk).

set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${1:-.}"
shift || true
experiments=("$@")
if [[ ${#experiments[@]} -eq 0 ]]; then
    experiments=(E1 E2 E12 E13 E14 E15 E16 E17 E18 E19 E20 E21)
fi

mkdir -p "$outdir"
echo "==> experiments ${experiments[*]} -> $outdir/BENCH_<id>.json"
cargo run -q --release --offline -p argus-bench --bin experiments -- \
    --json-dir "$outdir" "${experiments[@]}"

for e in "${experiments[@]}"; do
    f="$outdir/BENCH_${e^^}.json"
    [[ -f "$f" ]] && echo "wrote $f"
done
