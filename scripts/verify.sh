#!/usr/bin/env bash
# Offline tier-1 gate: everything a clean checkout must pass with no network.
#
#   scripts/verify.sh          # build + default test suite
#   scripts/verify.sh --full   # + property suites, benches, experiments smoke
#
# The workspace has zero external dependencies, so --offline is enforced —
# any accidental registry dependency fails here rather than in CI.

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run scripts/lint.sh
run cargo build --release --offline
run cargo test -q --offline
run cargo test -q --offline --features proptest
# Bench smoke: tiny E12/E13/E14 asserting group-commit batching never
# increases forces per commit, the page cache hits during recovery, and the
# contended lock mix completes without a hang under every concurrency-control
# policy with blocking mode breaking at least one deadlock (cc.deadlocks > 0).
run cargo run -q --release --offline -p argus-bench --bin experiments -- --smoke

if [[ "${1:-}" == "--full" ]]; then
    run cargo build --offline --benches -p argus-bench
    run cargo run -q --release --offline -p argus-bench --bin experiments -- E1
fi

echo "verify: OK"
