#!/usr/bin/env bash
# Offline tier-1 gate: everything a clean checkout must pass with no network.
#
#   scripts/verify.sh          # build + default test suite
#   scripts/verify.sh --full   # + property suites, benches, experiments smoke
#   scripts/verify.sh --sweep  # + bounded deterministic crash-schedule sweep
#   scripts/verify.sh --trace  # + trace selftest (determinism, I12, flight)
#   scripts/verify.sh --vopr   # + seeded fault-composition batch + selftest
#   scripts/verify.sh --scale  # + 64-shard sharded-world smoke + many-guardian vopr
#   scripts/verify.sh --wall   # + wall-clock file-backed bench smoke (E18/E19)
#
# The workspace has zero external dependencies, so --offline is enforced —
# any accidental registry dependency fails here rather than in CI.

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run scripts/lint.sh
run cargo build --release --offline
run cargo test -q --offline
run cargo test -q --offline --features proptest
# Bench smoke: tiny E12/E13/E14 asserting group-commit batching never
# increases forces per commit, the page cache hits during recovery, and the
# contended lock mix completes without a hang under every concurrency-control
# policy with blocking mode breaking at least one deadlock (cc.deadlocks > 0).
run cargo run -q --release --offline -p argus-bench --bin experiments -- --smoke

if [[ "${1:-}" == "--full" ]]; then
    run cargo build --offline --benches -p argus-bench
    run cargo run -q --release --offline -p argus-bench --bin experiments -- E1
fi

# Bounded crash-schedule sweep: a deterministic slice of the full matrix
# (crash at each of the first 6 write indices per victim, plus a strided
# second crash during recovery, for every organization/cache/media cell).
# Any counterexample — an illegal recovered state or a lint violation —
# makes argus-lint exit non-zero and fails the gate. The exhaustive sweep
# is `argus-lint sweep --double` (also run by experiment E15).
if [[ "${1:-}" == "--sweep" || "${1:-}" == "--full" ]]; then
    run cargo run -q --release --offline --bin argus-lint -- sweep --double --stride 7 --max 6
fi

# Trace tier: the seeded 3-guardian 2PC smoke workload must pass the I12
# structural trace lint, export byte-identical Chrome JSON across two runs
# of the same seed, and round-trip through the flight recorder.
if [[ "${1:-}" == "--trace" || "${1:-}" == "--full" ]]; then
    run cargo run -q --release --offline --bin argus-lint -- trace --selftest
fi

# VOPR tier: a seeded randomized fault-composition batch over every recovery
# organization (drops, duplication, delay, partitions, pauses, decay, crashes
# composed in one schedule) must come back violation-free, and the selftest
# must prove the detection path end to end — a planted impossible oracle
# expectation is caught, replays byte-identically, and dumps a flight
# schedule. Any violation makes argus-lint exit non-zero and fails the gate.
if [[ "${1:-}" == "--vopr" || "${1:-}" == "--full" ]]; then
    for kind in simple hybrid shadow redo; do
        run cargo run -q --release --offline --bin argus-lint -- \
            vopr --seed 1 --seeds 16 --iterations 64 --kind "$kind"
    done
    run cargo run -q --release --offline --bin argus-lint -- vopr --selftest
fi

# Scale tier: the sharded many-guardian world. The 64-shard zipfian
# cross-shard mix must complete on every log organization, conserve its
# oracles (total balance; seats vs. committed reservations), and quiesce
# clean under the full I1–I12 lint on every shard's log — then the VOPR
# composes its fault schedules on 8- and 16-guardian worlds instead of the
# default 3.
if [[ "${1:-}" == "--scale" || "${1:-}" == "--full" ]]; then
    run cargo run -q --release --offline -p argus-bench --bin experiments -- --scale-smoke
    run cargo run -q --release --offline --bin argus-lint -- \
        vopr --seed 1 --seeds 8 --iterations 64 --guardians 8
    run cargo run -q --release --offline --bin argus-lint -- \
        vopr --seed 9 --seeds 4 --iterations 64 --guardians 16
fi

# Wall tier: the group-commit claim against a real file with real fsyncs
# (asserted by --wall-smoke), then a small E18/E19/E20 emitting
# BENCH_E18.json / BENCH_E19.json / BENCH_E20.json; E20 asserts the
# instant-restart claims (on-demand time-to-first-commit far below the
# full-scan restarts, parallel makespan falling with workers) as it runs. Runs on tmpfs when available so a slow CI disk cannot
# dominate; override the location with ARGUS_BENCH_DIR.
if [[ "${1:-}" == "--wall" || "${1:-}" == "--full" ]]; then
    if [[ -z "${ARGUS_BENCH_DIR:-}" && -d /dev/shm && -w /dev/shm ]]; then
        export ARGUS_BENCH_DIR=/dev/shm
    fi
    run cargo run -q --release --offline -p argus-bench --bin experiments -- --wall-smoke
    run cargo run -q --release --offline -p argus-bench --bin experiments -- \
        --json-dir . E18 E19 E20
fi

echo "verify: OK"
