//! An interactive shell over the guardian world — poke at atomic actions,
//! crash nodes, and watch recovery happen.
//!
//! ```sh
//! cargo run --bin argus_repl
//! echo "spawn hybrid\nset G0 x 42\ncrash G0\nrestart G0\nget G0 x" | cargo run --bin argus_repl
//! ```

use argus::core::HousekeepingMode;
use argus::guardian::{RsKind, World};
use argus::objects::{ActionId, GuardianId, Value};
use std::io::{BufRead, Write};

const HELP: &str = "\
commands:
  spawn <simple|hybrid|shadow>     create a guardian
  set <G> <name> <value>           bind a stable variable (auto-commits unless
                                   inside a begin/commit block); value is an
                                   integer or arbitrary text
  get <G> <name>                   read the committed value
  begin <G>                        start an explicit action (spans guardians)
  commit                           two-phase commit the open action
  abort                            locally abort the open action
  crash <G>                        crash a guardian (volatile state vanishes)
  restart <G>                      recover a guardian from its stable log
  housekeep <G> <compact|snapshot> reorganize the log (hybrid only)
  stats <G>                        log + device statistics
  help                             this text
  quit                             exit";

struct Repl {
    world: World,
    open: Option<ActionId>,
}

impl Repl {
    fn new() -> Self {
        Self {
            world: World::fast(),
            open: None,
        }
    }

    fn parse_gid(token: &str) -> Option<GuardianId> {
        let digits = token.strip_prefix('G').unwrap_or(token);
        digits.parse().ok().map(GuardianId)
    }

    fn parse_value(tokens: &[&str]) -> Value {
        let joined = tokens.join(" ");
        match joined.parse::<i64>() {
            Ok(n) => Value::Int(n),
            Err(_) => Value::Str(joined),
        }
    }

    fn run_line(&mut self, line: &str) -> Result<Option<String>, String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let err = |msg: &str| Err(msg.to_string());
        match tokens.as_slice() {
            [] | ["#", ..] => Ok(None),
            ["help"] => Ok(Some(HELP.into())),
            ["quit"] | ["exit"] => Ok(Some("bye".into())),
            ["spawn", kind] => {
                let kind = match *kind {
                    "simple" => RsKind::Simple,
                    "hybrid" => RsKind::Hybrid,
                    "shadow" => RsKind::Shadow,
                    other => return err(&format!("unknown organization {other:?}")),
                };
                let g = self.world.add_guardian(kind).map_err(|e| e.to_string())?;
                Ok(Some(format!("spawned {g} ({kind:?})")))
            }
            ["set", g, name, rest @ ..] if !rest.is_empty() => {
                let g = Self::parse_gid(g).ok_or("bad guardian id")?;
                let value = Self::parse_value(rest);
                match self.open {
                    Some(aid) => {
                        self.world
                            .set_stable(g, aid, name, value)
                            .map_err(|e| e.to_string())?;
                        Ok(Some(format!("{name} staged under {aid}")))
                    }
                    None => {
                        let aid = self.world.begin(g).map_err(|e| e.to_string())?;
                        self.world
                            .set_stable(g, aid, name, value)
                            .map_err(|e| e.to_string())?;
                        let outcome = self.world.commit(aid).map_err(|e| e.to_string())?;
                        Ok(Some(format!("{name} set; {aid} → {outcome:?}")))
                    }
                }
            }
            ["get", g, name] => {
                let g = Self::parse_gid(g).ok_or("bad guardian id")?;
                let guardian = self.world.guardian(g).map_err(|e| e.to_string())?;
                Ok(Some(match guardian.stable_value(name) {
                    Some(v) => format!("{name} = {v}"),
                    None => format!("{name} is unset"),
                }))
            }
            ["begin", g] => {
                if self.open.is_some() {
                    return err("an action is already open; commit or abort it first");
                }
                let g = Self::parse_gid(g).ok_or("bad guardian id")?;
                let aid = self.world.begin(g).map_err(|e| e.to_string())?;
                self.open = Some(aid);
                Ok(Some(format!("began {aid} (coordinator {g})")))
            }
            ["commit"] => {
                let aid = self.open.take().ok_or("no open action")?;
                let outcome = self.world.commit(aid).map_err(|e| e.to_string())?;
                Ok(Some(format!("{aid} → {outcome:?}")))
            }
            ["abort"] => {
                let aid = self.open.take().ok_or("no open action")?;
                self.world.abort_local(aid);
                Ok(Some(format!("{aid} aborted locally")))
            }
            ["crash", g] => {
                let g = Self::parse_gid(g).ok_or("bad guardian id")?;
                self.world.crash(g);
                Ok(Some(format!("{g} is down; its volatile state is gone")))
            }
            ["restart", g] => {
                let g = Self::parse_gid(g).ok_or("bad guardian id")?;
                let outcome = self.world.restart(g).map_err(|e| e.to_string())?;
                Ok(Some(format!(
                    "{g} recovered: {} objects restored, {} entries examined, {} in doubt",
                    outcome.ot.len(),
                    outcome.entries_examined,
                    outcome.pt.prepared_actions().len()
                )))
            }
            ["housekeep", g, mode] => {
                let g = Self::parse_gid(g).ok_or("bad guardian id")?;
                let mode = match *mode {
                    "compact" | "compaction" => HousekeepingMode::Compaction,
                    "snapshot" => HousekeepingMode::Snapshot,
                    other => return err(&format!("unknown mode {other:?}")),
                };
                self.world.housekeep(g, mode).map_err(|e| e.to_string())?;
                let stats = self
                    .world
                    .guardian(g)
                    .map_err(|e| e.to_string())?
                    .log_stats();
                Ok(Some(format!(
                    "housekept {g}: log is now {} entries",
                    stats.entries
                )))
            }
            ["stats", g] => {
                let g = Self::parse_gid(g).ok_or("bad guardian id")?;
                let stats = self
                    .world
                    .guardian(g)
                    .map_err(|e| e.to_string())?
                    .log_stats();
                Ok(Some(format!(
                    "{g}: {} log entries, {} bytes; device {}",
                    stats.entries, stats.bytes, stats.device
                )))
            }
            _ => err("unrecognized command; try `help`"),
        }
    }
}

fn main() {
    let mut repl = Repl::new();
    let interactive = std::io::IsTerminal::is_terminal(&std::io::stdin());
    if interactive {
        println!("argus repl — reliable object storage to support atomic actions");
        println!("type `help` for commands\n");
    }
    let stdin = std::io::stdin();
    loop {
        if interactive {
            print!("argus> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        match repl.run_line(trimmed) {
            Ok(Some(msg)) => {
                println!("{msg}");
                if msg == "bye" {
                    break;
                }
            }
            Ok(None) => {}
            Err(e) => println!("error: {e}"),
        }
    }
}
