//! Inspect a stable log on disk: decode every entry, show the backward
//! chain of outcome entries, and summarize what recovery would see.
//!
//! ```sh
//! cargo run --example persistent           # create some state first
//! cargo run --bin argus_logdump            # dump the demo log
//! cargo run --bin argus_logdump -- <path>  # dump any store file
//! ```

use argus::core::{decode_entry, LogEntry};
use argus::sim::{CostModel, SimClock};
use argus::slog::{LogAddress, StableLog};
use argus::stable::FileStore;
use std::path::PathBuf;

fn describe(entry: &LogEntry) -> String {
    match entry {
        LogEntry::Data {
            uid,
            kind,
            aid,
            value,
        } => {
            format!("data          {uid} {kind} by {aid}: {value}")
        }
        LogEntry::DataH { kind, value } => format!("data          ({kind}) {value}"),
        LogEntry::DataR {
            uid,
            kind,
            aid,
            back,
            value,
        } => {
            let back = back.map(|b| format!(" ⇤ {b}")).unwrap_or_default();
            format!("data_r        {uid} {kind} by {aid}: {value}{back}")
        }
        LogEntry::Prepared { aid, pairs, .. } => {
            let pairs: Vec<String> = pairs.iter().map(|(u, l)| format!("{u}→{l}")).collect();
            format!("prepared      {aid} [{}]", pairs.join(", "))
        }
        LogEntry::Committed { aid, .. } => format!("committed     {aid}"),
        LogEntry::Aborted { aid, .. } => format!("aborted       {aid}"),
        LogEntry::BaseCommitted { uid, value, .. } => {
            format!("base_committed {uid}: {value}")
        }
        LogEntry::PreparedData {
            uid, aid, value, ..
        } => {
            format!("prepared_data {uid} by {aid}: {value}")
        }
        LogEntry::Committing { aid, gids, .. } => {
            let gids: Vec<String> = gids.iter().map(|g| g.to_string()).collect();
            format!("committing    {aid} participants [{}]", gids.join(", "))
        }
        LogEntry::Done { aid, .. } => format!("done          {aid}"),
        LogEntry::CommittedSs { cssl, .. } => {
            format!("committed_ss  checkpoint of {} objects", cssl.len())
        }
    }
}

fn main() {
    let path: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("argus-persistent-demo.log"));
    if !path.exists() {
        eprintln!(
            "no log at {} (run the `persistent` example first?)",
            path.display()
        );
        std::process::exit(1);
    }

    let store = FileStore::open(&path, SimClock::new(), CostModel::fast()).expect("open store");
    let mut log = StableLog::open(store).expect("open log");
    println!(
        "{}: {} entries, {} bytes\n",
        path.display(),
        log.stable_count(),
        log.stable_bytes()
    );

    // Collect backwards, print forwards.
    let mut entries: Vec<(LogAddress, u64, Vec<u8>)> = Vec::new();
    for item in log.read_backward(None) {
        entries.push(item.expect("read entry"));
    }
    entries.reverse();

    let top = log.get_top();
    let mut chain_len = 0usize;
    for (addr, seq, payload) in &entries {
        match decode_entry(payload) {
            Ok(entry) => {
                let chain = match entry.prev() {
                    Some(prev) => format!("⤴ {prev}"),
                    None if entry.is_outcome() => "⤴ nil".to_string(),
                    None => String::new(),
                };
                if entry.is_outcome() {
                    chain_len += 1;
                }
                let head = if Some(*addr) == top { "  ← top" } else { "" };
                println!("{addr:>8} #{seq:<4} {:<60} {chain}{head}", describe(&entry));
            }
            Err(e) => println!("{addr:>8} #{seq:<4} <undecodable: {e}>"),
        }
    }
    println!(
        "\n{} outcome entries on the backward chain; recovery starts at {}",
        chain_len,
        top.map(|a| a.to_string()).unwrap_or_else(|| "-".into())
    );
}
