//! Lint a stable log on disk against the invariant catalogue I1–I10.
//!
//! ```sh
//! cargo run --example persistent            # create some state first
//! cargo run --bin argus-lint                # lint the demo log
//! cargo run --bin argus-lint -- <path>      # lint any store file
//! ```
//!
//! Exits 0 when the log is clean, 1 when any invariant is violated, 2 when
//! the file cannot be opened as a stable log.

use argus::check::{detect_flavor, lint_log, LogImage};
use argus::sim::{CostModel, SimClock};
use argus::slog::StableLog;
use argus::stable::FileStore;
use std::path::PathBuf;

fn main() {
    let path: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("argus-persistent-demo.log"));
    if !path.exists() {
        eprintln!(
            "no log at {} (run the `persistent` example first?)",
            path.display()
        );
        std::process::exit(2);
    }

    let store = match FileStore::open(&path, SimClock::new(), CostModel::fast()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: cannot open store: {e}", path.display());
            std::process::exit(2);
        }
    };
    let mut log = match StableLog::open(store) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{}: cannot open stable log: {e}", path.display());
            std::process::exit(2);
        }
    };

    let image = LogImage::from_log(&mut log);
    let report = lint_log(&image);
    println!(
        "{}: {} entries ({} undecodable), {} flavor",
        path.display(),
        image.len(),
        image.bad_records().len(),
        detect_flavor(&image),
    );
    println!("{report}");
    std::process::exit(if report.is_clean() { 0 } else { 1 });
}
