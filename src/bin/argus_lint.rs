//! Lint a stable log on disk against the invariant catalogue I1–I10, run
//! the exhaustive crash-schedule sweeper, run the randomized
//! fault-composition explorer (the VOPR), or record a causal trace.
//!
//! ```sh
//! cargo run --example persistent            # create some state first
//! cargo run --bin argus-lint                # lint the demo log
//! cargo run --bin argus-lint -- <path>      # lint any store file or dir
//!
//! cargo run --release --bin argus-lint -- sweep            # full matrix
//! cargo run --release --bin argus-lint -- sweep --double   # + second crash
//! cargo run --release --bin argus-lint -- sweep --kind hybrid --max 8
//!
//! cargo run --release --bin argus-lint -- vopr --seed 7 --iterations 96
//! cargo run --release --bin argus-lint -- vopr --seeds 32 --kind shadow
//! cargo run --release --bin argus-lint -- vopr --seeds 8 --guardians 16
//! cargo run --release --bin argus-lint -- vopr --selftest
//!
//! cargo run --release --bin argus-lint -- trace --seed 7 --out trace.json
//! cargo run --release --bin argus-lint -- trace --selftest
//! ```
//!
//! Lint mode exits 0 when the log is clean, 1 when any invariant is
//! violated, 2 when the file cannot be opened as a stable log. Sweep mode
//! exits 0 when every explored crash schedule recovered to a legal,
//! lint-clean state and 1 when any counterexample was found.
//!
//! Vopr mode runs seeded randomized fault-composition runs (message drop,
//! duplication, reorder, partitions with heals, pauses, clock skew, media
//! decay, crashes with recovery) against a multi-guardian 2PC workload,
//! checking I1–I12 and the legal-outcomes oracle at every quiesce point.
//! One summary line per seed; on any violation the schedule is dumped
//! through the flight recorder and the same `--seed N --iterations M`
//! replays it byte for byte. `--seeds K` runs seeds `seed..seed+K`.
//! `--selftest` proves the detection path: it plants an impossible oracle
//! expectation, requires the run to catch it, replays it, and checks the
//! flight dumps landed. Exits 1 on violations (or a failed selftest).
//!
//! Trace mode runs a seeded 3-guardian 2PC banking workload with
//! device-detail tracing on and writes the Chrome trace-event JSON (open
//! `chrome://tracing` or <https://ui.perfetto.dev> and load the file). The
//! trace is byte-identical for a given seed. `--selftest` additionally
//! checks exactly that (two runs, compared byte for byte), runs the I12
//! structural trace lint, and round-trips the trace through the flight
//! recorder; it exits 1 on any failure.

use argus::check::sweep::{sweep, SweepConfig};
use argus::check::{detect_flavor, lint_log, lint_trace, FaultTally, LogImage, VoprConfig};
use argus::core::providers::FileProvider;
use argus::guardian::RsKind;
use argus::sim::{CostModel, SimClock};
use argus::slog::StableLog;
use argus::stable::FileStore;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => run_sweep(&args[1..]),
        Some("vopr") => run_vopr(&args[1..]),
        Some("trace") => run_trace(&args[1..]),
        _ => run_lint(args.first().map(PathBuf::from)),
    }
}

/// The `vopr` subcommand: seeded randomized fault-composition runs, one
/// summary line per seed, exit 1 on any violation.
fn run_vopr(args: &[String]) {
    let mut seed = 1u64;
    let mut iterations = 96u64;
    let mut seeds = 1u64;
    let mut kind = RsKind::Hybrid;
    let mut guardians = 3u32;
    let mut selftest = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--guardians" => {
                guardians = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 2)
                    .unwrap_or_else(|| usage("--guardians needs an integer >= 2"));
            }
            "--iterations" => {
                iterations = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--iterations needs a positive integer"));
            }
            "--seeds" => {
                seeds = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seeds needs a positive integer"));
            }
            "--kind" => {
                kind = match it.next().map(String::as_str) {
                    Some("simple") => RsKind::Simple,
                    Some("hybrid") => RsKind::Hybrid,
                    Some("shadow") => RsKind::Shadow,
                    Some("redo") => RsKind::Redo,
                    _ => usage("--kind needs simple|hybrid|shadow|redo"),
                };
            }
            "--selftest" => selftest = true,
            other => usage(&format!("unknown vopr flag {other}")),
        }
    }

    let reg = argus::obs::Registry::new();
    let _scope = reg.enter();

    if selftest {
        // Prove the detection-and-replay path end to end: plant an
        // impossible committed expectation, require the explorer to catch
        // it, replay it identically, and dump the schedule.
        let mut cfg = VoprConfig::new(seed, iterations.min(32));
        cfg.kind = kind;
        cfg.guardians = guardians;
        cfg.break_oracle = true;
        let a = argus::check::vopr(&cfg);
        let b = argus::check::vopr(&cfg);
        let mut failed = false;
        if a.is_clean() {
            eprintln!("selftest: the planted oracle bug was NOT detected");
            failed = true;
        } else {
            eprintln!(
                "selftest: planted bug detected ({} violations)",
                a.violations.len()
            );
        }
        if a.line() != b.line() || a.violations != b.violations {
            eprintln!("selftest: two seed-{seed} runs diverged");
            eprintln!("  a: {}", a.line());
            eprintln!("  b: {}", b.line());
            failed = true;
        } else {
            eprintln!("selftest: seed {seed} replays byte-identically");
        }
        if a.flight.is_empty() {
            eprintln!("selftest: no flight-recorder dump was written");
            failed = true;
        }
        for p in a.flight.iter().chain(&b.flight) {
            if std::path::Path::new(p).exists() {
                eprintln!("selftest: flight dump {p}");
            } else {
                eprintln!("selftest: flight dump {p} is missing");
                failed = true;
            }
        }
        std::process::exit(if failed { 1 } else { 0 });
    }

    let started = std::time::Instant::now();
    let mut tally = FaultTally::default();
    let mut violations = 0u64;
    for s in seed..seed + seeds {
        let mut cfg = VoprConfig::new(s, iterations);
        cfg.kind = kind;
        cfg.guardians = guardians;
        let summary = argus::check::vopr(&cfg);
        println!("{summary}");
        for p in &summary.flight {
            println!("  flight: {p}");
        }
        tally.absorb(&summary.faults);
        violations += summary.violations.len() as u64;
    }
    println!(
        "vopr: {} seed(s) x {} iterations ({:?}), faults[{tally}], {} violations in {:.2?}",
        seeds,
        iterations,
        kind,
        violations,
        started.elapsed(),
    );
    std::process::exit(if violations == 0 { 0 } else { 1 });
}

/// One seeded, device-detail traced run of the 3-guardian cross-guardian
/// banking mix. Returns the Chrome JSON export and the I12 lint verdicts.
fn traced_run(seed: u64) -> (String, Vec<argus::check::Violation>) {
    use argus::guardian::World;
    use argus::workload::{Banking, BankingConfig};

    let reg = argus::obs::Registry::new();
    let _scope = reg.enter();
    let tracer = argus::trace::current();
    tracer.set_detail(argus::trace::Detail::Device);
    // Building the world binds the simulated clock and resets the tracer:
    // one world, one trace.
    let mut world = World::new(CostModel::default());
    let bank = Banking::setup(
        &mut world,
        RsKind::Hybrid,
        BankingConfig {
            guardians: 3,
            cross_prob: 1.0,
            abort_prob: 0.1,
            ..Default::default()
        },
    )
    .expect("banking setup");
    let mut rng = argus::sim::DetRng::new(seed);
    bank.run(&mut world, &mut rng, 40).expect("banking run");
    assert_eq!(
        bank.total_balance(&world).expect("balance"),
        bank.expected_total(),
        "transfers must conserve the total balance"
    );
    let violations = lint_trace(world.tracer());
    (argus::trace::to_chrome_json(&tracer.events()), violations)
}

/// The `trace` subcommand: record a seeded run, export Chrome JSON, and
/// (with `--selftest`) verify determinism, I12, and the flight recorder.
fn run_trace(args: &[String]) {
    let mut seed = 1u64;
    let mut out: Option<PathBuf> = None;
    let mut selftest = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--out" => {
                out = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| usage("--out needs a path")),
                ));
            }
            "--selftest" => selftest = true,
            other => usage(&format!("unknown trace flag {other}")),
        }
    }

    let (json, violations) = traced_run(seed);
    let mut failed = false;
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("I12: {v}");
        }
        failed = true;
    }
    if selftest {
        let (again, _) = traced_run(seed);
        if json != again {
            eprintln!("selftest: two seed-{seed} runs produced different trace bytes");
            failed = true;
        } else {
            eprintln!("selftest: seed {seed} trace is byte-identical across runs");
        }
        // Flight-recorder round trip: the dump must reproduce the export
        // exactly.
        let events: Vec<argus::trace::TraceEvent> = {
            // Re-record so the dump sees the events, not the JSON.
            let tracer = argus::trace::current();
            let _ = traced_run(seed);
            tracer.events()
        };
        match argus::trace::flight::dump(&format!("lint-selftest-seed{seed}"), &events) {
            Ok(path) => {
                let round = std::fs::read_to_string(&path).unwrap_or_default();
                if round == json {
                    eprintln!("selftest: flight dump {} round-trips", path.display());
                } else {
                    eprintln!(
                        "selftest: flight dump {} differs from export",
                        path.display()
                    );
                    failed = true;
                }
                let _ = std::fs::remove_file(&path);
            }
            Err(e) => {
                eprintln!("selftest: flight dump failed: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("{}: cannot write trace: {e}", path.display());
                std::process::exit(2);
            });
            eprintln!(
                "wrote {} ({} bytes; load in chrome://tracing or ui.perfetto.dev)",
                path.display(),
                json.len()
            );
        }
        None if !selftest => print!("{json}"),
        None => {}
    }
}

/// The crash-schedule sweeper: every write index of the 3-guardian 2PC
/// workload, across the configuration matrix (see `argus_check::sweep`).
fn run_sweep(args: &[String]) {
    let mut double = false;
    let mut stride: u64 = 1;
    let mut max: Option<u64> = None;
    let mut kind: Option<RsKind> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--double" => double = true,
            "--stride" => {
                stride = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--stride needs a positive integer"));
            }
            "--max" => {
                max = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--max needs a positive integer")),
                );
            }
            "--kind" => {
                kind = Some(match it.next().map(String::as_str) {
                    Some("simple") => RsKind::Simple,
                    Some("hybrid") => RsKind::Hybrid,
                    Some("shadow") => RsKind::Shadow,
                    Some("redo") => RsKind::Redo,
                    _ => usage("--kind needs simple|hybrid|shadow|redo"),
                });
            }
            other => usage(&format!("unknown sweep flag {other}")),
        }
    }

    let started = std::time::Instant::now();
    let mut cells = SweepConfig::matrix(double, stride);
    if let Some(k) = kind {
        cells.retain(|c| c.kind == k);
    }
    let mut points = 0u64;
    let mut counterexamples = 0u64;
    for cell in &mut cells {
        cell.max_points_per_victim = max;
        let report = sweep(cell);
        println!("{report}");
        for cx in &report.counterexamples {
            println!("  {cx}");
        }
        points += report.total_points();
        counterexamples += report.counterexamples.len() as u64;
    }
    println!(
        "swept {} cells, {} schedule points, {} counterexamples in {:.2?}",
        cells.len(),
        points,
        counterexamples,
        started.elapsed(),
    );
    std::process::exit(if counterexamples == 0 { 0 } else { 1 });
}

fn usage(problem: &str) -> ! {
    eprintln!(
        "{problem}\nusage: argus-lint [<store path>]\n       \
         argus-lint sweep [--double] [--stride N] [--max N] [--kind simple|hybrid|shadow|redo]\n       \
         argus-lint vopr [--seed N] [--iterations M] [--seeds K] [--guardians G] \
         [--kind simple|hybrid|shadow|redo] [--selftest]\n       \
         argus-lint trace [--seed N] [--out PATH] [--selftest]"
    );
    std::process::exit(2);
}

fn run_lint(path: Option<PathBuf>) {
    let path = path.unwrap_or_else(|| std::env::temp_dir().join("argus-persistent-demo"));
    if !path.exists() {
        eprintln!(
            "no log at {} (run the `persistent` example first?)",
            path.display()
        );
        std::process::exit(2);
    }

    // A directory is a FileProvider state dir: its stable root names the
    // active log generation.
    let store_path = if path.is_dir() {
        let mut provider = match FileProvider::new(&path) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: cannot open state dir: {e}", path.display());
                std::process::exit(2);
            }
        };
        let generation = match provider.active_generation() {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{}: cannot read stable root: {e}", path.display());
                std::process::exit(2);
            }
        };
        provider.store_path(generation)
    } else {
        path
    };

    let store = match FileStore::open(&store_path, SimClock::new(), CostModel::fast()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: cannot open store: {e}", store_path.display());
            std::process::exit(2);
        }
    };
    let mut log = match StableLog::open(store) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{}: cannot open stable log: {e}", store_path.display());
            std::process::exit(2);
        }
    };

    let image = LogImage::from_log(&mut log);
    let report = lint_log(&image);
    println!(
        "{}: {} entries ({} undecodable), {} flavor",
        store_path.display(),
        image.len(),
        image.bad_records().len(),
        detect_flavor(&image),
    );
    println!("{report}");
    std::process::exit(if report.is_clean() { 0 } else { 1 });
}
