//! Lint a stable log on disk against the invariant catalogue I1–I10, or
//! run the exhaustive crash-schedule sweeper.
//!
//! ```sh
//! cargo run --example persistent            # create some state first
//! cargo run --bin argus-lint                # lint the demo log
//! cargo run --bin argus-lint -- <path>      # lint any store file or dir
//!
//! cargo run --release --bin argus-lint -- sweep            # full matrix
//! cargo run --release --bin argus-lint -- sweep --double   # + second crash
//! cargo run --release --bin argus-lint -- sweep --kind hybrid --max 8
//! ```
//!
//! Lint mode exits 0 when the log is clean, 1 when any invariant is
//! violated, 2 when the file cannot be opened as a stable log. Sweep mode
//! exits 0 when every explored crash schedule recovered to a legal,
//! lint-clean state and 1 when any counterexample was found.

use argus::check::sweep::{sweep, SweepConfig};
use argus::check::{detect_flavor, lint_log, LogImage};
use argus::core::providers::FileProvider;
use argus::guardian::RsKind;
use argus::sim::{CostModel, SimClock};
use argus::slog::StableLog;
use argus::stable::FileStore;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("sweep") {
        run_sweep(&args[1..]);
        return;
    }
    run_lint(args.first().map(PathBuf::from));
}

/// The crash-schedule sweeper: every write index of the 3-guardian 2PC
/// workload, across the configuration matrix (see `argus_check::sweep`).
fn run_sweep(args: &[String]) {
    let mut double = false;
    let mut stride: u64 = 1;
    let mut max: Option<u64> = None;
    let mut kind: Option<RsKind> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--double" => double = true,
            "--stride" => {
                stride = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--stride needs a positive integer"));
            }
            "--max" => {
                max = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--max needs a positive integer")),
                );
            }
            "--kind" => {
                kind = Some(match it.next().map(String::as_str) {
                    Some("simple") => RsKind::Simple,
                    Some("hybrid") => RsKind::Hybrid,
                    Some("shadow") => RsKind::Shadow,
                    _ => usage("--kind needs simple|hybrid|shadow"),
                });
            }
            other => usage(&format!("unknown sweep flag {other}")),
        }
    }

    let started = std::time::Instant::now();
    let mut cells = SweepConfig::matrix(double, stride);
    if let Some(k) = kind {
        cells.retain(|c| c.kind == k);
    }
    let mut points = 0u64;
    let mut counterexamples = 0u64;
    for cell in &mut cells {
        cell.max_points_per_victim = max;
        let report = sweep(cell);
        println!("{report}");
        for cx in &report.counterexamples {
            println!("  {cx}");
        }
        points += report.total_points();
        counterexamples += report.counterexamples.len() as u64;
    }
    println!(
        "swept {} cells, {} schedule points, {} counterexamples in {:.2?}",
        cells.len(),
        points,
        counterexamples,
        started.elapsed(),
    );
    std::process::exit(if counterexamples == 0 { 0 } else { 1 });
}

fn usage(problem: &str) -> ! {
    eprintln!(
        "{problem}\nusage: argus-lint [<store path>]\n       \
         argus-lint sweep [--double] [--stride N] [--max N] [--kind simple|hybrid|shadow]"
    );
    std::process::exit(2);
}

fn run_lint(path: Option<PathBuf>) {
    let path = path.unwrap_or_else(|| std::env::temp_dir().join("argus-persistent-demo"));
    if !path.exists() {
        eprintln!(
            "no log at {} (run the `persistent` example first?)",
            path.display()
        );
        std::process::exit(2);
    }

    // A directory is a FileProvider state dir: its stable root names the
    // active log generation.
    let store_path = if path.is_dir() {
        let mut provider = match FileProvider::new(&path) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: cannot open state dir: {e}", path.display());
                std::process::exit(2);
            }
        };
        let generation = match provider.active_generation() {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{}: cannot read stable root: {e}", path.display());
                std::process::exit(2);
            }
        };
        provider.store_path(generation)
    } else {
        path
    };

    let store = match FileStore::open(&store_path, SimClock::new(), CostModel::fast()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: cannot open store: {e}", store_path.display());
            std::process::exit(2);
        }
    };
    let mut log = match StableLog::open(store) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{}: cannot open stable log: {e}", store_path.display());
            std::process::exit(2);
        }
    };

    let image = LogImage::from_log(&mut log);
    let report = lint_log(&image);
    println!(
        "{}: {} entries ({} undecodable), {} flavor",
        store_path.display(),
        image.len(),
        image.bad_records().len(),
        detect_flavor(&image),
    );
    println!("{report}");
    std::process::exit(if report.is_clean() { 0 } else { 1 });
}
