//! # argus — reliable object storage to support atomic actions
//!
//! A full Rust reproduction of Brian M. Oki's MIT/LCS thesis *Reliable
//! Object Storage to Support Atomic Actions* (1983): the **hybrid log**
//! organization of stable storage for the Argus programming language, with
//! its writing, recovery, and housekeeping algorithms — plus everything it
//! stands on, built from scratch:
//!
//! * [`stable`] — simulated atomic stable storage (Lampson–Sturgis mirrored
//!   disks, fault injection);
//! * [`slog`] — the stable-log abstraction of §3.1;
//! * [`objects`] — recoverable objects: atomic/mutex objects, the volatile
//!   heap, flattening, accessibility;
//! * [`core`] — the recovery system: simple log (ch. 3), hybrid log
//!   (ch. 4), early prepare, housekeeping by compaction and snapshot
//!   (ch. 5);
//! * [`shadow`] — the shadowing baseline of §1.2.1 for head-to-head
//!   comparison;
//! * [`twopc`] — two-phase commit state machines (§2.2);
//! * [`cc`] — concurrency control: lock wait queues, wait-for-graph
//!   deadlock detection, timeout and seeded-backoff retry policies;
//! * [`guardian`] — the Argus guardian substrate and the deterministic
//!   distributed-system simulator;
//! * [`workload`] — banking / reservations / synthetic workload generators;
//! * [`sim`] — the deterministic clock, RNG, and device cost model;
//! * [`obs`] — the zero-dependency observability layer: counters,
//!   histograms, phase timers on the simulated clock, the bounded event
//!   journal, and the bench harness;
//! * [`trace`] — deterministic causal tracing: per-action spans with 2PC
//!   flow edges, exact latency attribution, Chrome trace-event export
//!   (`argus-lint trace`), and the counterexample flight recorder;
//! * [`check`] — the log-invariant linter (I1–I10, also the `argus-lint`
//!   CLI), the heap stale-lock lint I11, the structural trace lint I12,
//!   and the bounded 2PC interleaving explorer.
//!
//! ## Quickstart
//!
//! ```
//! use argus::guardian::{Outcome, RsKind, World};
//! use argus::objects::Value;
//!
//! let mut world = World::fast();
//! let g = world.add_guardian(RsKind::Hybrid).unwrap();
//!
//! // An atomic action binds a stable variable and commits.
//! let action = world.begin(g).unwrap();
//! world.set_stable(g, action, "greeting", Value::from("hello, stable world")).unwrap();
//! assert_eq!(world.commit(action).unwrap(), Outcome::Committed);
//!
//! // The node crashes; recovery rebuilds the stable state from the log.
//! world.crash(g);
//! world.restart(g).unwrap();
//! assert_eq!(
//!     world.guardian(g).unwrap().stable_value("greeting"),
//!     Some(Value::from("hello, stable world")),
//! );
//! ```

pub use argus_cc as cc;
pub use argus_check as check;
pub use argus_core as core;
pub use argus_guardian as guardian;
pub use argus_objects as objects;
pub use argus_obs as obs;
pub use argus_shadow as shadow;
pub use argus_sim as sim;
pub use argus_slog as slog;
pub use argus_stable as stable;
pub use argus_trace as trace;
pub use argus_twopc as twopc;
pub use argus_workload as workload;
